#include "ml/data.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace gopim::ml {

void
Dataset::append(const std::vector<float> &features, double target)
{
    if (x.empty()) {
        x = tensor::Matrix(1, features.size());
        std::copy(features.begin(), features.end(), x.rowPtr(0));
    } else {
        GOPIM_ASSERT(features.size() == x.cols(),
                     "appended sample has wrong feature width");
        tensor::Matrix grown(x.rows() + 1, x.cols());
        std::copy(x.data(), x.data() + x.size(), grown.data());
        std::copy(features.begin(), features.end(),
                  grown.rowPtr(x.rows()));
        x = std::move(grown);
    }
    y.push_back(target);
}

Split
trainTestSplit(const Dataset &data, double trainFraction, Rng &rng)
{
    GOPIM_ASSERT(trainFraction > 0.0 && trainFraction < 1.0,
                 "train fraction must be in (0, 1)");
    GOPIM_ASSERT(data.size() >= 2, "need at least two samples to split");

    std::vector<size_t> order(data.size());
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);

    const auto trainCount = std::max<size_t>(
        1, static_cast<size_t>(
               static_cast<double>(data.size()) * trainFraction));

    Split split;
    auto copyRows = [&](Dataset &dst, size_t begin, size_t end) {
        dst.x = tensor::Matrix(end - begin, data.x.cols());
        dst.y.resize(end - begin);
        for (size_t i = begin; i < end; ++i) {
            const size_t src = order[i];
            std::copy(data.x.rowPtr(src),
                      data.x.rowPtr(src) + data.x.cols(),
                      dst.x.rowPtr(i - begin));
            dst.y[i - begin] = data.y[src];
        }
    };
    copyRows(split.train, 0, trainCount);
    copyRows(split.test, trainCount, data.size());
    return split;
}

void
StandardScaler::fit(const tensor::Matrix &x)
{
    GOPIM_ASSERT(x.rows() > 0, "cannot fit scaler on empty data");
    means_.assign(x.cols(), 0.0f);
    stds_.assign(x.cols(), 0.0f);

    for (size_t r = 0; r < x.rows(); ++r)
        for (size_t c = 0; c < x.cols(); ++c)
            means_[c] += x(r, c);
    for (auto &m : means_)
        m /= static_cast<float>(x.rows());

    for (size_t r = 0; r < x.rows(); ++r)
        for (size_t c = 0; c < x.cols(); ++c) {
            const float d = x(r, c) - means_[c];
            stds_[c] += d * d;
        }
    for (auto &s : stds_)
        s = std::sqrt(s / static_cast<float>(x.rows()));
}

tensor::Matrix
StandardScaler::transform(const tensor::Matrix &x) const
{
    GOPIM_ASSERT(x.cols() == means_.size(),
                 "scaler width mismatch (fit on different data?)");
    tensor::Matrix out = x;
    for (size_t r = 0; r < out.rows(); ++r)
        for (size_t c = 0; c < out.cols(); ++c) {
            const float s = stds_[c];
            if (s > 1e-9f)
                out(r, c) = (out(r, c) - means_[c]) / s;
        }
    return out;
}

} // namespace gopim::ml
