/**
 * @file
 * Binned Bayesian-mean regressor standing in for the paper's "BR"
 * (Bernoulli Regression) entry in Fig. 9 — see DESIGN.md §6 for the
 * naming caveat. Each feature is quantized into equal-frequency bins;
 * prediction is the precision-weighted average of per-bin target means
 * (a naive-Bayes-style factorized estimate).
 */

#ifndef GOPIM_ML_BAYES_HH
#define GOPIM_ML_BAYES_HH

#include <cstdint>
#include <vector>

#include "ml/regressor.hh"

namespace gopim::ml {

/** Hyperparameters for the binned Bayes regressor. */
struct BayesParams
{
    uint32_t binsPerFeature = 8;
    /** Pseudo-count shrinking bin means toward the global mean. */
    double priorStrength = 2.0;
};

/** Factorized binned-mean regressor ("BR"). */
class BinnedBayesRegressor : public Regressor
{
  public:
    explicit BinnedBayesRegressor(BayesParams params = {});

    void fit(const Dataset &data) override;
    double predict(const std::vector<float> &features) const override;
    std::string name() const override { return "BR"; }

  private:
    /** Bin index of a value for a feature, via learned edges. */
    size_t binOf(size_t feature, float value) const;

    BayesParams params_;
    double globalMean_ = 0.0;
    /** Per feature: sorted bin upper edges (binsPerFeature - 1 each). */
    std::vector<std::vector<float>> edges_;
    /** Per feature x bin: shrunk target mean. */
    std::vector<std::vector<double>> binMeans_;
    /** Per feature x bin: sample count (for precision weighting). */
    std::vector<std::vector<double>> binCounts_;
};

} // namespace gopim::ml

#endif // GOPIM_ML_BAYES_HH
