/**
 * @file
 * Linear regression with optional L2 (ridge) regularization, solved in
 * closed form via the normal equations (Cholesky factorization).
 * Stands in for scikit-learn's "LR" entry in Fig. 9.
 */

#ifndef GOPIM_ML_LINEAR_HH
#define GOPIM_ML_LINEAR_HH

#include "ml/regressor.hh"

namespace gopim::ml {

/** Ridge regression y = w.x + b fit by normal equations. */
class LinearRegressor : public Regressor
{
  public:
    /** lambda is the L2 penalty on the weights (bias is unpenalized). */
    explicit LinearRegressor(double lambda = 1e-6);

    void fit(const Dataset &data) override;
    double predict(const std::vector<float> &features) const override;
    std::string name() const override { return "LR"; }

    const std::vector<double> &weights() const { return weights_; }
    double bias() const { return bias_; }

  private:
    double lambda_;
    std::vector<double> weights_;
    double bias_ = 0.0;
};

/**
 * Solve the symmetric positive-definite system A x = b in place via
 * Cholesky decomposition. A is row-major n x n. Exposed for reuse and
 * unit testing.
 */
std::vector<double> solveSpd(std::vector<double> a, std::vector<double> b,
                             size_t n);

} // namespace gopim::ml

#endif // GOPIM_ML_LINEAR_HH
