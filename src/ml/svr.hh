/**
 * @file
 * Linear support vector regression trained with stochastic subgradient
 * descent on the epsilon-insensitive loss. Stands in for the "SVR"
 * entry in Fig. 9.
 */

#ifndef GOPIM_ML_SVR_HH
#define GOPIM_ML_SVR_HH

#include "common/rng.hh"
#include "ml/regressor.hh"

namespace gopim::ml {

/** Hyperparameters for linear SVR. */
struct SvrParams
{
    double epsilon = 0.01;   ///< insensitivity tube half-width
    double c = 10.0;         ///< loss weight vs. L2 regularization
    uint32_t epochs = 200;
    double learningRate = 0.01;
    uint64_t seed = 7;
};

/** Linear epsilon-SVR via SGD. */
class LinearSvr : public Regressor
{
  public:
    explicit LinearSvr(SvrParams params = {});

    void fit(const Dataset &data) override;
    double predict(const std::vector<float> &features) const override;
    std::string name() const override { return "SVR"; }

  private:
    SvrParams params_;
    std::vector<double> weights_;
    double bias_ = 0.0;
};

} // namespace gopim::ml

#endif // GOPIM_ML_SVR_HH
