/**
 * @file
 * CART regression tree (variance-reduction splits). Stands in for
 * scikit-learn's "DT" entry in Fig. 9 and serves as the weak learner
 * for the gradient-boosted ensemble (XGB-lite).
 */

#ifndef GOPIM_ML_TREE_HH
#define GOPIM_ML_TREE_HH

#include <cstdint>
#include <vector>

#include "ml/regressor.hh"

namespace gopim::ml {

/** Hyperparameters for a regression tree. */
struct TreeParams
{
    uint32_t maxDepth = 8;
    uint32_t minSamplesLeaf = 2;
    /** Minimum variance improvement required to accept a split. */
    double minImpurityDecrease = 1e-12;
};

/** CART regression tree. */
class DecisionTreeRegressor : public Regressor
{
  public:
    explicit DecisionTreeRegressor(TreeParams params = {});

    void fit(const Dataset &data) override;

    /**
     * Fit against an explicit target vector (used by gradient boosting
     * to fit residuals without copying the feature matrix).
     */
    void fitTargets(const tensor::Matrix &x,
                    const std::vector<double> &targets);

    double predict(const std::vector<float> &features) const override;
    std::string name() const override { return "DT"; }

    /** Number of nodes in the fitted tree (0 before fit). */
    size_t nodeCount() const { return nodes_.size(); }

    /** Depth of the fitted tree. */
    uint32_t depth() const;

  private:
    struct Node
    {
        int32_t left = -1;   ///< child index, -1 for leaf
        int32_t right = -1;
        uint32_t feature = 0;
        float threshold = 0.0f;
        double value = 0.0;  ///< leaf prediction (mean of targets)
        uint32_t depth = 0;
    };

    int32_t build(const tensor::Matrix &x,
                  const std::vector<double> &targets,
                  std::vector<uint32_t> &indices, size_t begin,
                  size_t end, uint32_t depth);

    TreeParams params_;
    std::vector<Node> nodes_;
};

} // namespace gopim::ml

#endif // GOPIM_ML_TREE_HH
