#include "ml/forest.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace gopim::ml {

RandomForestRegressor::RandomForestRegressor(ForestParams params)
    : params_(params)
{
    GOPIM_ASSERT(params_.numTrees >= 1, "need at least one tree");
    GOPIM_ASSERT(params_.sampleFraction > 0.0 &&
                     params_.sampleFraction <= 1.0,
                 "sample fraction must be in (0, 1]");
}

void
RandomForestRegressor::fit(const Dataset &data)
{
    GOPIM_ASSERT(data.size() > 0, "cannot fit on empty dataset");
    trees_.clear();
    Rng rng(params_.seed);

    const auto sampleCount = std::max<size_t>(
        1, static_cast<size_t>(static_cast<double>(data.size()) *
                               params_.sampleFraction));

    for (uint32_t t = 0; t < params_.numTrees; ++t) {
        // Bootstrap sample (with replacement).
        Dataset sample;
        sample.x = tensor::Matrix(sampleCount, data.numFeatures());
        sample.y.resize(sampleCount);
        for (size_t i = 0; i < sampleCount; ++i) {
            const size_t src = rng.uniformInt(
                static_cast<uint64_t>(data.size()));
            std::copy(data.x.rowPtr(src),
                      data.x.rowPtr(src) + data.numFeatures(),
                      sample.x.rowPtr(i));
            sample.y[i] = data.y[src];
        }
        DecisionTreeRegressor tree(params_.tree);
        tree.fit(sample);
        trees_.push_back(std::move(tree));
    }
}

double
RandomForestRegressor::predict(const std::vector<float> &features) const
{
    GOPIM_ASSERT(!trees_.empty(), "predict before fit");
    double sum = 0.0;
    for (const auto &tree : trees_)
        sum += tree.predict(features);
    return sum / static_cast<double>(trees_.size());
}

} // namespace gopim::ml
