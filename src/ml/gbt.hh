/**
 * @file
 * Gradient-boosted regression trees (squared loss), an "XGB-lite"
 * standing in for the XGBoost entry in Fig. 9.
 */

#ifndef GOPIM_ML_GBT_HH
#define GOPIM_ML_GBT_HH

#include <vector>

#include "ml/tree.hh"

namespace gopim::ml {

/** Hyperparameters for the boosted ensemble. */
struct GbtParams
{
    uint32_t numTrees = 100;
    double learningRate = 0.1;
    TreeParams tree{.maxDepth = 4,
                    .minSamplesLeaf = 3,
                    .minImpurityDecrease = 1e-12};
};

/** Boosted ensemble of CART trees fit on squared-loss residuals. */
class GradientBoostedTrees : public Regressor
{
  public:
    explicit GradientBoostedTrees(GbtParams params = {});

    void fit(const Dataset &data) override;
    double predict(const std::vector<float> &features) const override;
    std::string name() const override { return "XGB"; }

    size_t treeCount() const { return trees_.size(); }

  private:
    GbtParams params_;
    double baseline_ = 0.0;
    std::vector<DecisionTreeRegressor> trees_;
};

} // namespace gopim::ml

#endif // GOPIM_ML_GBT_HH
