#include "ml/linear.hh"

#include <cmath>

#include "common/logging.hh"

namespace gopim::ml {

LinearRegressor::LinearRegressor(double lambda) : lambda_(lambda)
{
    GOPIM_ASSERT(lambda >= 0.0, "ridge penalty must be non-negative");
}

std::vector<double>
solveSpd(std::vector<double> a, std::vector<double> b, size_t n)
{
    GOPIM_ASSERT(a.size() == n * n && b.size() == n,
                 "solveSpd: shape mismatch");

    // Cholesky: A = L L^T, stored in the lower triangle of a.
    for (size_t j = 0; j < n; ++j) {
        double diag = a[j * n + j];
        for (size_t k = 0; k < j; ++k)
            diag -= a[j * n + k] * a[j * n + k];
        GOPIM_ASSERT(diag > 0.0,
                     "solveSpd: matrix not positive definite");
        const double ljj = std::sqrt(diag);
        a[j * n + j] = ljj;
        for (size_t i = j + 1; i < n; ++i) {
            double v = a[i * n + j];
            for (size_t k = 0; k < j; ++k)
                v -= a[i * n + k] * a[j * n + k];
            a[i * n + j] = v / ljj;
        }
    }

    // Forward substitution: L z = b.
    for (size_t i = 0; i < n; ++i) {
        double v = b[i];
        for (size_t k = 0; k < i; ++k)
            v -= a[i * n + k] * b[k];
        b[i] = v / a[i * n + i];
    }
    // Back substitution: L^T x = z.
    for (size_t ii = n; ii > 0; --ii) {
        const size_t i = ii - 1;
        double v = b[i];
        for (size_t k = i + 1; k < n; ++k)
            v -= a[k * n + i] * b[k];
        b[i] = v / a[i * n + i];
    }
    return b;
}

void
LinearRegressor::fit(const Dataset &data)
{
    GOPIM_ASSERT(data.size() > 0, "cannot fit on empty dataset");
    const size_t d = data.numFeatures();
    const size_t n = d + 1; // bias column appended

    // Normal equations with an implicit all-ones bias column.
    std::vector<double> gram(n * n, 0.0);
    std::vector<double> xty(n, 0.0);
    for (size_t r = 0; r < data.size(); ++r) {
        const float *row = data.x.rowPtr(r);
        for (size_t i = 0; i < d; ++i) {
            for (size_t j = 0; j <= i; ++j)
                gram[i * n + j] +=
                    static_cast<double>(row[i]) * row[j];
            gram[d * n + i] += row[i]; // bias x feature
            xty[i] += static_cast<double>(row[i]) * data.y[r];
        }
        gram[d * n + d] += 1.0;
        xty[d] += data.y[r];
    }
    // Mirror to the upper triangle and apply the ridge penalty.
    for (size_t i = 0; i < n; ++i)
        for (size_t j = i + 1; j < n; ++j)
            gram[i * n + j] = gram[j * n + i];
    for (size_t i = 0; i < d; ++i)
        gram[i * n + i] += lambda_;
    // Tiny jitter keeps the bias row positive definite for degenerate
    // datasets (e.g. a single sample).
    gram[d * n + d] += 1e-12;

    auto solution = solveSpd(std::move(gram), std::move(xty), n);
    weights_.assign(solution.begin(), solution.begin() + d);
    bias_ = solution[d];
}

double
LinearRegressor::predict(const std::vector<float> &features) const
{
    GOPIM_ASSERT(features.size() == weights_.size(),
                 "predict: feature width mismatch");
    double out = bias_;
    for (size_t i = 0; i < weights_.size(); ++i)
        out += weights_[i] * features[i];
    return out;
}

} // namespace gopim::ml
