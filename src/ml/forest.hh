/**
 * @file
 * Random forest regressor: bagged CART trees with per-tree bootstrap
 * samples, averaging their predictions. Extends the Fig. 9 zoo with
 * the variance-reduction ensemble family.
 */

#ifndef GOPIM_ML_FOREST_HH
#define GOPIM_ML_FOREST_HH

#include <cstdint>
#include <vector>

#include "ml/tree.hh"

namespace gopim::ml {

/** Hyperparameters for the random forest. */
struct ForestParams
{
    uint32_t numTrees = 50;
    /** Bootstrap sample fraction per tree. */
    double sampleFraction = 0.8;
    TreeParams tree{.maxDepth = 10,
                    .minSamplesLeaf = 2,
                    .minImpurityDecrease = 1e-12};
    uint64_t seed = 17;
};

/** Bagged ensemble of CART trees. */
class RandomForestRegressor : public Regressor
{
  public:
    explicit RandomForestRegressor(ForestParams params = {});

    void fit(const Dataset &data) override;
    double predict(const std::vector<float> &features) const override;
    std::string name() const override { return "RF"; }

    size_t treeCount() const { return trees_.size(); }

  private:
    ForestParams params_;
    std::vector<DecisionTreeRegressor> trees_;
};

} // namespace gopim::ml

#endif // GOPIM_ML_FOREST_HH
