/**
 * @file
 * Regression quality metrics. RMSE is the paper's primary metric for
 * the predictor study (Fig. 9).
 */

#ifndef GOPIM_ML_METRICS_HH
#define GOPIM_ML_METRICS_HH

#include <vector>

namespace gopim::ml {

/** Root mean squared error. */
double rmse(const std::vector<double> &truth,
            const std::vector<double> &pred);

/** Mean absolute error. */
double mae(const std::vector<double> &truth,
           const std::vector<double> &pred);

/** Coefficient of determination (R^2); 1.0 is a perfect fit. */
double r2(const std::vector<double> &truth,
          const std::vector<double> &pred);

/** Mean absolute percentage error (truth values of 0 are skipped). */
double mape(const std::vector<double> &truth,
            const std::vector<double> &pred);

} // namespace gopim::ml

#endif // GOPIM_ML_METRICS_HH
