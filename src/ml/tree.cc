#include "ml/tree.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace gopim::ml {

DecisionTreeRegressor::DecisionTreeRegressor(TreeParams params)
    : params_(params)
{
    GOPIM_ASSERT(params_.maxDepth >= 1, "tree depth must be >= 1");
    GOPIM_ASSERT(params_.minSamplesLeaf >= 1,
                 "minSamplesLeaf must be >= 1");
}

void
DecisionTreeRegressor::fit(const Dataset &data)
{
    fitTargets(data.x, data.y);
}

void
DecisionTreeRegressor::fitTargets(const tensor::Matrix &x,
                                  const std::vector<double> &targets)
{
    GOPIM_ASSERT(x.rows() == targets.size(),
                 "tree fit: row/target count mismatch");
    GOPIM_ASSERT(!targets.empty(), "tree fit: empty dataset");
    nodes_.clear();
    std::vector<uint32_t> indices(x.rows());
    std::iota(indices.begin(), indices.end(), 0);
    build(x, targets, indices, 0, indices.size(), 0);
}

int32_t
DecisionTreeRegressor::build(const tensor::Matrix &x,
                             const std::vector<double> &targets,
                             std::vector<uint32_t> &indices, size_t begin,
                             size_t end, uint32_t depth)
{
    const size_t count = end - begin;
    double sum = 0.0;
    double sumSq = 0.0;
    for (size_t i = begin; i < end; ++i) {
        sum += targets[indices[i]];
        sumSq += targets[indices[i]] * targets[indices[i]];
    }
    const double nodeMean = sum / static_cast<double>(count);
    const double nodeSse =
        sumSq - sum * sum / static_cast<double>(count);

    const auto nodeIdx = static_cast<int32_t>(nodes_.size());
    nodes_.push_back({-1, -1, 0, 0.0f, nodeMean, depth});

    if (depth >= params_.maxDepth ||
        count < 2 * params_.minSamplesLeaf || nodeSse <= 1e-12) {
        return nodeIdx;
    }

    // Exhaustive best split: scan each feature in sorted order and
    // track the SSE reduction of every candidate threshold.
    double bestGain = params_.minImpurityDecrease;
    uint32_t bestFeature = 0;
    float bestThreshold = 0.0f;
    bool found = false;

    std::vector<uint32_t> sorted(indices.begin() +
                                     static_cast<long>(begin),
                                 indices.begin() + static_cast<long>(end));
    for (uint32_t f = 0; f < x.cols(); ++f) {
        std::sort(sorted.begin(), sorted.end(),
                  [&](uint32_t a, uint32_t b) {
                      return x(a, f) < x(b, f);
                  });
        double leftSum = 0.0;
        double leftSq = 0.0;
        for (size_t i = 0; i + 1 < count; ++i) {
            const double t = targets[sorted[i]];
            leftSum += t;
            leftSq += t * t;
            const float cur = x(sorted[i], f);
            const float nxt = x(sorted[i + 1], f);
            if (cur == nxt)
                continue;
            const size_t nl = i + 1;
            const size_t nr = count - nl;
            if (nl < params_.minSamplesLeaf ||
                nr < params_.minSamplesLeaf)
                continue;
            const double rightSum = sum - leftSum;
            const double rightSq = sumSq - leftSq;
            const double sseL =
                leftSq - leftSum * leftSum / static_cast<double>(nl);
            const double sseR =
                rightSq -
                rightSum * rightSum / static_cast<double>(nr);
            const double gain = nodeSse - sseL - sseR;
            if (gain > bestGain) {
                bestGain = gain;
                bestFeature = f;
                bestThreshold = (cur + nxt) * 0.5f;
                found = true;
            }
        }
    }

    if (!found)
        return nodeIdx;

    const auto mid = std::partition(
        indices.begin() + static_cast<long>(begin),
        indices.begin() + static_cast<long>(end), [&](uint32_t idx) {
            return x(idx, bestFeature) <= bestThreshold;
        });
    const auto midPos = static_cast<size_t>(mid - indices.begin());
    // partition() can theoretically degenerate with exotic float
    // comparisons; guard against infinite recursion.
    if (midPos == begin || midPos == end)
        return nodeIdx;

    nodes_[static_cast<size_t>(nodeIdx)].feature = bestFeature;
    nodes_[static_cast<size_t>(nodeIdx)].threshold = bestThreshold;
    const int32_t left =
        build(x, targets, indices, begin, midPos, depth + 1);
    const int32_t right =
        build(x, targets, indices, midPos, end, depth + 1);
    nodes_[static_cast<size_t>(nodeIdx)].left = left;
    nodes_[static_cast<size_t>(nodeIdx)].right = right;
    return nodeIdx;
}

double
DecisionTreeRegressor::predict(const std::vector<float> &features) const
{
    GOPIM_ASSERT(!nodes_.empty(), "predict before fit");
    size_t node = 0;
    while (nodes_[node].left >= 0) {
        const auto &n = nodes_[node];
        GOPIM_ASSERT(n.feature < features.size(),
                     "predict: feature width mismatch");
        node = static_cast<size_t>(
            features[n.feature] <= n.threshold ? n.left : n.right);
    }
    return nodes_[node].value;
}

uint32_t
DecisionTreeRegressor::depth() const
{
    uint32_t d = 0;
    for (const auto &n : nodes_)
        d = std::max(d, n.depth);
    return d;
}

} // namespace gopim::ml
