#include "ml/svr.hh"

#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace gopim::ml {

LinearSvr::LinearSvr(SvrParams params) : params_(params)
{
    GOPIM_ASSERT(params_.epsilon >= 0.0, "epsilon must be >= 0");
    GOPIM_ASSERT(params_.c > 0.0, "C must be positive");
}

void
LinearSvr::fit(const Dataset &data)
{
    GOPIM_ASSERT(data.size() > 0, "cannot fit on empty dataset");
    const size_t d = data.numFeatures();
    weights_.assign(d, 0.0);
    bias_ = 0.0;

    Rng rng(params_.seed);
    std::vector<size_t> order(data.size());
    std::iota(order.begin(), order.end(), 0);

    for (uint32_t epoch = 0; epoch < params_.epochs; ++epoch) {
        rng.shuffle(order);
        // 1/t learning-rate decay keeps late epochs stable.
        const double lr = params_.learningRate /
                          (1.0 + 0.01 * static_cast<double>(epoch));
        for (size_t idx : order) {
            const float *row = data.x.rowPtr(idx);
            double pred = bias_;
            for (size_t i = 0; i < d; ++i)
                pred += weights_[i] * row[i];
            const double err = pred - data.y[idx];

            // Subgradient of the epsilon-insensitive loss.
            double g = 0.0;
            if (err > params_.epsilon)
                g = 1.0;
            else if (err < -params_.epsilon)
                g = -1.0;

            for (size_t i = 0; i < d; ++i) {
                // L2 shrinkage plus the loss subgradient.
                weights_[i] -=
                    lr * (weights_[i] / params_.c + g * row[i]);
            }
            bias_ -= lr * g;
        }
    }
}

double
LinearSvr::predict(const std::vector<float> &features) const
{
    GOPIM_ASSERT(features.size() == weights_.size(),
                 "predict: feature width mismatch");
    double out = bias_;
    for (size_t i = 0; i < weights_.size(); ++i)
        out += weights_[i] * features[i];
    return out;
}

} // namespace gopim::ml
