/**
 * @file
 * Common interface for all regressors in the ML library. The Fig. 9
 * predictor study trains every implementation on the same stage-time
 * dataset and compares RMSE.
 */

#ifndef GOPIM_ML_REGRESSOR_HH
#define GOPIM_ML_REGRESSOR_HH

#include <string>
#include <vector>

#include "ml/data.hh"
#include "tensor/matrix.hh"

namespace gopim::ml {

/** Abstract supervised regressor. */
class Regressor
{
  public:
    virtual ~Regressor() = default;

    /** Fit on the given dataset (features already scaled if desired). */
    virtual void fit(const Dataset &data) = 0;

    /** Predict a single sample (row vector of features). */
    virtual double predict(const std::vector<float> &features) const = 0;

    /** Predict every row of a feature matrix. */
    std::vector<double> predictAll(const tensor::Matrix &x) const;

    /** Short display name for reports (e.g. "XGB", "MLP-3"). */
    virtual std::string name() const = 0;
};

} // namespace gopim::ml

#endif // GOPIM_ML_REGRESSOR_HH
