#include "isa/isa.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "common/hash.hh"
#include "common/logging.hh"
#include "isa/lower.hh"
#include "pipeline/schedule.hh"

namespace gopim::isa {

const char *
toString(Opcode op)
{
    switch (op) {
      case Opcode::CfgStage:
        return "CFG_STAGE";
      case Opcode::Mvm:
        return "MVM";
      case Opcode::RowWrite:
        return "ROW_WRITE";
      case Opcode::NocSend:
        return "NOC_SEND";
      case Opcode::NocRecv:
        return "NOC_RECV";
      case Opcode::Refresh:
        return "REFRESH";
      case Opcode::Barrier:
        return "BARRIER";
      case Opcode::Sync:
        return "SYNC";
    }
    panic("unknown opcode");
}

bool
opcodeKnown(uint8_t raw)
{
    return raw >= static_cast<uint8_t>(Opcode::CfgStage) &&
           raw <= static_cast<uint8_t>(Opcode::Sync);
}

double
Command::durationNs() const
{
    return std::bit_cast<double>(durationBits);
}

uint64_t
Command::bitsOf(double ns)
{
    return std::bit_cast<uint64_t>(ns);
}

const char *
toString(Regime regime)
{
    switch (regime) {
      case Regime::Serial:
        return "serial";
      case Regime::IntraBatch:
        return "intra-batch";
      case Regime::IntraInterBatch:
        return "intra-inter-batch";
    }
    panic("unknown regime");
}

void
ScheduleDesc::normalize()
{
    if (replicas.empty())
        replicas.assign(stageTimesNs.size(), 1u);
}

std::pair<uint32_t, uint32_t>
ScheduleDesc::chunkStructure() const
{
    switch (regime) {
      case Regime::Serial:
        return {1u, totalMicroBatches};
      case Regime::IntraBatch: {
        const uint32_t perBatch =
            std::min(std::max(1u, microBatchesPerBatch),
                     totalMicroBatches);
        const uint32_t batches =
            std::max(1u, totalMicroBatches / perBatch);
        return {perBatch, batches};
      }
      case Regime::IntraInterBatch:
        return {totalMicroBatches, 1u};
    }
    panic("unknown regime");
}

namespace {

/** Canonical byte serialization helpers for fingerprinting. */
void
appendU64(std::string &bytes, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        bytes.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
appendDoubleBits(std::string &bytes, double v)
{
    appendU64(bytes, std::bit_cast<uint64_t>(v));
}

} // namespace

uint64_t
ScheduleDesc::fingerprint() const
{
    std::string bytes;
    bytes.reserve(64 + 16 * stageTimesNs.size());
    appendU64(bytes, stageTimesNs.size());
    for (double t : stageTimesNs)
        appendDoubleBits(bytes, t);
    // Empty replicas mean "one per stage" everywhere downstream, so
    // both spellings must hash identically.
    if (replicas.empty()) {
        for (size_t i = 0; i < stageTimesNs.size(); ++i)
            appendU64(bytes, 1u);
    } else {
        for (uint32_t r : replicas)
            appendU64(bytes, r);
    }
    appendU64(bytes, static_cast<uint64_t>(regime));
    appendU64(bytes, totalMicroBatches);
    appendU64(bytes, microBatchesPerBatch);
    appendU64(bytes, seed);
    appendU64(bytes, bufferSlots);
    appendU64(bytes, replicasAsServers ? 1u : 0u);
    appendDoubleBits(bytes, writeRetryProb);
    appendDoubleBits(bytes, writeFraction);
    appendU64(bytes, refreshEveryMicroBatches);
    appendDoubleBits(bytes, refreshStallNs);
    return fnv1a64(bytes);
}

std::string
ScheduleDesc::validate() const
{
    if (stageTimesNs.empty())
        return "desc has no stages";
    for (size_t i = 0; i < stageTimesNs.size(); ++i) {
        if (!std::isfinite(stageTimesNs[i]) || stageTimesNs[i] < 0.0)
            return "stage " + std::to_string(i) +
                   " has a non-finite or negative service time";
    }
    if (!replicas.empty() && replicas.size() != stageTimesNs.size())
        return "replica vector size mismatch (" +
               std::to_string(replicas.size()) + " vs " +
               std::to_string(stageTimesNs.size()) + " stages)";
    for (size_t i = 0; i < replicas.size(); ++i)
        if (replicas[i] == 0)
            return "stage " + std::to_string(i) + " has zero replicas";
    if (totalMicroBatches < 1)
        return "need at least one micro-batch";
    if (!std::isfinite(writeRetryProb) || writeRetryProb < 0.0 ||
        writeRetryProb >= 1.0)
        return "writeRetryProb must lie in [0, 1)";
    if (!std::isfinite(writeFraction) || writeFraction < 0.0 ||
        writeFraction > 1.0)
        return "writeFraction must lie in [0, 1]";
    if (!std::isfinite(refreshStallNs) || refreshStallNs < 0.0)
        return "refreshStallNs must be finite and non-negative";
    return "";
}

std::string
validateStream(const CommandStream &stream)
{
    if (std::string err = stream.desc.validate(); !err.empty())
        return "invalid desc: " + err;
    const CommandStream expected =
        lowerSchedule(stream.desc, stream.label);
    if (stream.commands.size() != expected.commands.size())
        return "command count mismatch: stream has " +
               std::to_string(stream.commands.size()) +
               ", lowering of its desc produces " +
               std::to_string(expected.commands.size());
    for (size_t i = 0; i < stream.commands.size(); ++i) {
        const Command &got = stream.commands[i];
        const Command &want = expected.commands[i];
        if (got == want)
            continue;
        std::ostringstream oss;
        oss << "command " << i << " diverges from the canonical "
            << "lowering: stream has " << toString(got.op)
            << " stage=" << got.stage << " mb=" << got.microBatch
            << " operand=" << got.operand << " durationBits=0x"
            << std::hex << got.durationBits << std::dec
            << ", expected " << toString(want.op)
            << " stage=" << want.stage << " mb=" << want.microBatch
            << " operand=" << want.operand << " durationBits=0x"
            << std::hex << want.durationBits;
        return oss.str();
    }
    return "";
}

std::vector<std::vector<double>>
nominalServiceNs(const CommandStream &stream)
{
    const ScheduleDesc &desc = stream.desc;
    const size_t numStages = desc.stageTimesNs.size();
    const auto [chunkSize, numChunks] = desc.chunkStructure();
    const size_t executed =
        static_cast<size_t>(chunkSize) * numChunks;
    std::vector<std::vector<double>> nominal(
        numStages, std::vector<double>(executed, 0.0));
    for (const Command &cmd : stream.commands) {
        switch (cmd.op) {
          case Opcode::Mvm:
          case Opcode::RowWrite:
          case Opcode::Refresh:
            GOPIM_ASSERT(cmd.stage < numStages &&
                             cmd.microBatch < executed,
                         "timed command out of range");
            nominal[cmd.stage][cmd.microBatch] += cmd.durationNs();
            break;
          default:
            break;
        }
    }
    return nominal;
}

NominalTiming
nominalTiming(const CommandStream &stream)
{
    const auto nominal = nominalServiceNs(stream);
    const size_t numStages = nominal.size();
    const auto [chunkSize, numChunks] = stream.desc.chunkStructure();

    NominalTiming timing;
    timing.busyNs.assign(numStages, 0.0);
    for (uint32_t chunk = 0; chunk < numChunks; ++chunk) {
        std::vector<std::vector<double>> times(
            numStages, std::vector<double>(chunkSize));
        for (size_t i = 0; i < numStages; ++i)
            for (uint32_t j = 0; j < chunkSize; ++j)
                times[i][j] =
                    nominal[i][chunk * chunkSize + j];
        const auto chunkResult =
            pipeline::schedulePipelinedVariable(times);
        timing.makespanNs += chunkResult.makespanNs;
        for (size_t i = 0; i < numStages; ++i)
            timing.busyNs[i] += chunkResult.busyNs[i];
    }
    return timing;
}

std::vector<std::pair<std::string, uint64_t>>
opcodeHistogram(const CommandStream &stream)
{
    constexpr Opcode kAll[] = {
        Opcode::CfgStage, Opcode::Mvm,     Opcode::RowWrite,
        Opcode::NocSend,  Opcode::NocRecv, Opcode::Refresh,
        Opcode::Barrier,  Opcode::Sync,
    };
    std::vector<uint64_t> counts(sizeof(kAll) / sizeof(kAll[0]), 0);
    for (const Command &cmd : stream.commands) {
        const size_t idx =
            static_cast<size_t>(cmd.op) -
            static_cast<size_t>(Opcode::CfgStage);
        GOPIM_ASSERT(idx < counts.size(), "unknown opcode in stream");
        ++counts[idx];
    }
    std::vector<std::pair<std::string, uint64_t>> histogram;
    for (size_t i = 0; i < counts.size(); ++i)
        histogram.emplace_back(toString(kAll[i]), counts[i]);
    return histogram;
}

StreamBuilder::StreamBuilder(std::string label)
    : label_(std::move(label))
{
}

StreamBuilder &
StreamBuilder::regime(Regime regime)
{
    desc_.regime = regime;
    return *this;
}

StreamBuilder &
StreamBuilder::microBatches(uint32_t total, uint32_t perBatch)
{
    desc_.totalMicroBatches = total;
    desc_.microBatchesPerBatch = perBatch;
    return *this;
}

StreamBuilder &
StreamBuilder::seed(uint64_t seed)
{
    desc_.seed = seed;
    return *this;
}

StreamBuilder &
StreamBuilder::bufferSlots(uint32_t slots)
{
    desc_.bufferSlots = slots;
    return *this;
}

StreamBuilder &
StreamBuilder::replicasAsServers(bool on)
{
    desc_.replicasAsServers = on;
    return *this;
}

StreamBuilder &
StreamBuilder::writeRetry(double prob, double fraction)
{
    desc_.writeRetryProb = prob;
    desc_.writeFraction = fraction;
    return *this;
}

StreamBuilder &
StreamBuilder::refresh(uint32_t everyMicroBatches, double stallNs)
{
    desc_.refreshEveryMicroBatches = everyMicroBatches;
    desc_.refreshStallNs = stallNs;
    return *this;
}

StreamBuilder &
StreamBuilder::stage(double serviceTimeNs, uint32_t replicas)
{
    desc_.stageTimesNs.push_back(serviceTimeNs);
    desc_.replicas.push_back(replicas);
    return *this;
}

CommandStream
StreamBuilder::build() const
{
    return lowerSchedule(desc_, label_);
}

} // namespace gopim::isa
