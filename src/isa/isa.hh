/**
 * @file
 * The PIM instruction set: an explicit command-stream boundary
 * between "what a schedule executes" and "how a backend times it"
 * (the PIMSIM-NN-style compiler/timing-model split, ROADMAP item 2).
 *
 * A CommandStream is a deterministic program over crossbar stages:
 * per-stage configuration (`CFG_STAGE`), per-micro-batch compute and
 * write work (`MVM`, `ROW_WRITE`), inter-stage handoffs (`NOC_SEND`/
 * `NOC_RECV`), fault-repair refresh stalls (`REFRESH`), pipeline
 * drain boundaries (`BARRIER`), and an end-of-stream `SYNC` marker.
 * The stream header (ScheduleDesc) carries everything the timing
 * backend needs bit-exactly — stage service times as IEEE-754 bit
 * patterns, the pipelining regime, seeds, and the event-engine
 * knobs — so a replayed stream times identically to a live run
 * (sim::ReplayEngine holds that contract).
 *
 * Streams are produced by lowering a pipeline schedule (lower.hh),
 * by the StreamBuilder generator API (tests and non-GCN workloads),
 * or by reading a binary trace (trace_io.hh).
 */

#ifndef GOPIM_ISA_ISA_HH
#define GOPIM_ISA_ISA_HH

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace gopim::isa {

/** Operation kinds of the PIM command stream. */
enum class Opcode : uint8_t
{
    CfgStage = 1, ///< declare one stage: replicas + base service time
    Mvm = 2,      ///< crossbar MVM work of one (stage, micro-batch)
    RowWrite = 3, ///< write-verify portion (nominal single attempt)
    NocSend = 4,  ///< handoff from `stage` toward `stage + 1`
    NocRecv = 5,  ///< arrival at `stage` from `stage - 1`
    Refresh = 6,  ///< fault-repair re-program stall at this point
    Barrier = 7,  ///< pipeline drain boundary (operand = chunk index)
    Sync = 8,     ///< end of stream (operand = prior command count)
};

/** Canonical mnemonic ("MVM", "ROW_WRITE", ...). */
const char *toString(Opcode op);

/** Is `raw` a defined opcode byte? */
bool opcodeKnown(uint8_t raw);

/**
 * One decoded instruction. Durations travel as IEEE-754 bit patterns
 * so encode/decode round trips are bit-exact — the replay engine's
 * bit-identity guarantee depends on it.
 */
struct Command
{
    Opcode op = Opcode::Sync;
    uint32_t stage = 0;
    /** Micro-batch operand; Barrier stores the chunk index here. */
    uint32_t microBatch = 0;
    /** CfgStage: replica count. Sync: preceding command count. */
    uint64_t operand = 0;
    /** Bit pattern of the ns payload (0 for untimed ops). */
    uint64_t durationBits = 0;

    double durationNs() const;
    static uint64_t bitsOf(double ns);

    bool operator==(const Command &) const = default;
};

/** Pipelining regime of a stream (mirrors the scheduling regimes). */
enum class Regime : uint8_t
{
    Serial = 0,
    IntraBatch = 1,
    IntraInterBatch = 2,
};

const char *toString(Regime regime);

/**
 * The stream header: a backend-independent description of one
 * scheduling problem, carrying exactly the fields that determine
 * event-path timing. Two descs with equal fingerprint() produce
 * bit-identical replays — the trace lookup key and the lowering /
 * replay round-trip contract both rest on that.
 */
struct ScheduleDesc
{
    /** Post-replication service time of each stage (ns/micro-batch). */
    std::vector<double> stageTimesNs;
    /** Replica count per stage (normalized to stage count by
     *  normalize(); all-ones when the producer had none). */
    std::vector<uint32_t> replicas;
    Regime regime = Regime::IntraInterBatch;
    uint32_t totalMicroBatches = 1;
    /** Drain boundary for Regime::IntraBatch (micro-batches/batch). */
    uint32_t microBatchesPerBatch = 0;
    /** Seed driving stochastic service-time sampling at replay. */
    uint64_t seed = 1;
    /** Input-buffer slots in front of every stage. */
    uint32_t bufferSlots = std::numeric_limits<uint32_t>::max();
    /** Replica groups serve distinct micro-batches (multi-server). */
    bool replicasAsServers = false;
    /** Probability a write-verify attempt fails and repeats. */
    double writeRetryProb = 0.0;
    /** Fraction of a stage's service time attributable to writes. */
    double writeFraction = 0.0;
    /** Re-program refresh cadence in micro-batches (0 = never). */
    uint32_t refreshEveryMicroBatches = 0;
    /** Pipeline stall per refresh event (ns). */
    double refreshStallNs = 0.0;

    /** Fill `replicas` with ones when empty (producer had none). */
    void normalize();

    /** Refresh stalls are executed only when both knobs are live. */
    bool refreshActive() const
    {
        return refreshEveryMicroBatches > 0 && refreshStallNs > 0.0;
    }

    /**
     * (chunkSize, numChunks) of the drain decomposition — the same
     * formula the scheduling engines use, so Serial runs one
     * micro-batch per chunk, IntraBatch drains every batch, and
     * IntraInterBatch is a single chunk.
     */
    std::pair<uint32_t, uint32_t> chunkStructure() const;

    /**
     * FNV-1a digest over the canonical byte serialization of every
     * field above (doubles as bit patterns). The trace lookup key.
     */
    uint64_t fingerprint() const;

    /** "" when well-formed, else a diagnostic. */
    std::string validate() const;

    bool operator==(const ScheduleDesc &) const = default;
};

/** A lowered program: header + deterministic instruction sequence. */
struct CommandStream
{
    /** Free-text producer label ("GoPIM on Cora"); not fingerprinted. */
    std::string label;
    ScheduleDesc desc;
    std::vector<Command> commands;

    uint64_t fingerprint() const { return desc.fingerprint(); }

    bool operator==(const CommandStream &) const = default;
};

/**
 * Structural validation: the desc is well-formed and the command
 * sequence is exactly the deterministic lowering of the desc
 * (CfgStage prologue, per-chunk Barrier + unrolled micro-batch ops
 * with bit-exact durations, trailing Sync). Returns "" when valid,
 * else a diagnostic naming the first offending command.
 */
std::string validateStream(const CommandStream &stream);

/**
 * Nominal per-(stage, micro-batch) service times encoded in the
 * stream's ops (MVM + ROW_WRITE + REFRESH; single write attempt),
 * stage-major over the executed micro-batches (chunkSize x
 * numChunks). The stochastic retry spread at replay is not included.
 */
std::vector<std::vector<double>> nominalServiceNs(
    const CommandStream &stream);

/** Closed-form preview of a stream's timing (gopim_trace summary). */
struct NominalTiming
{
    double makespanNs = 0.0;
    std::vector<double> busyNs;
};

/**
 * Time the stream's nominal ops through the pipeline flow-shop
 * recurrence, chunk by chunk. For streams with default knobs
 * (unbounded buffers, single servers, no retries) this equals the
 * event-path replay exactly.
 */
NominalTiming nominalTiming(const CommandStream &stream);

/** Per-opcode command counts ([toString(op)] ordering). */
std::vector<std::pair<std::string, uint64_t>> opcodeHistogram(
    const CommandStream &stream);

/**
 * Generator API: emit command streams without a GCN schedule (the
 * DRAMsim3-style trace front-end for tests and non-GCN workloads).
 * Configure the desc fluently, then build() lowers it into a
 * validated stream.
 */
class StreamBuilder
{
  public:
    explicit StreamBuilder(std::string label = "");

    StreamBuilder &regime(Regime regime);
    StreamBuilder &microBatches(uint32_t total, uint32_t perBatch = 0);
    StreamBuilder &seed(uint64_t seed);
    StreamBuilder &bufferSlots(uint32_t slots);
    StreamBuilder &replicasAsServers(bool on);
    StreamBuilder &writeRetry(double prob, double fraction);
    StreamBuilder &refresh(uint32_t everyMicroBatches, double stallNs);
    /** Append one stage (pipeline order). */
    StreamBuilder &stage(double serviceTimeNs, uint32_t replicas = 1);

    const ScheduleDesc &desc() const { return desc_; }

    /** Lower the accumulated desc; panics on an invalid desc. */
    CommandStream build() const;

  private:
    std::string label_;
    ScheduleDesc desc_;
};

} // namespace gopim::isa

#endif // GOPIM_ISA_ISA_HH
