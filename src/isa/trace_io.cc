#include "isa/trace_io.hh"

#include <bit>
#include <fstream>
#include <sstream>

#include "common/hash.hh"

namespace gopim::isa {

const char kTraceMagic[4] = {'G', 'P', 'I', 'S'};

const CommandStream *
TraceBundle::find(uint64_t fingerprint) const
{
    for (const CommandStream &stream : streams)
        if (stream.fingerprint() == fingerprint)
            return &stream;
    return nullptr;
}

namespace {

/** Does `op` carry a duration payload on the wire? */
bool
opTimed(Opcode op)
{
    switch (op) {
      case Opcode::CfgStage:
      case Opcode::Mvm:
      case Opcode::RowWrite:
      case Opcode::Refresh:
        return true;
      default:
        return false;
    }
}

void
putVarint(std::string &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

void
putFixed64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putFixed16(std::string &out, uint16_t v)
{
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
}

/** Bounds-checked little-endian cursor over the trace bytes. */
class Cursor
{
  public:
    Cursor(const std::string &bytes, size_t begin, size_t end)
        : bytes_(bytes), pos_(begin), end_(end)
    {
    }

    size_t pos() const { return pos_; }
    size_t remaining() const { return end_ - pos_; }
    bool done() const { return pos_ == end_; }

    bool getVarint(uint64_t *out)
    {
        uint64_t v = 0;
        for (int shift = 0; shift < 64; shift += 7) {
            if (pos_ >= end_)
                return false;
            const uint8_t byte =
                static_cast<uint8_t>(bytes_[pos_++]);
            v |= static_cast<uint64_t>(byte & 0x7f) << shift;
            if ((byte & 0x80) == 0) {
                *out = v;
                return true;
            }
        }
        return false; // over-long varint
    }

    bool getFixed64(uint64_t *out)
    {
        if (remaining() < 8)
            return false;
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(
                     static_cast<uint8_t>(bytes_[pos_ + i]))
                 << (8 * i);
        pos_ += 8;
        *out = v;
        return true;
    }

    bool getFixed16(uint16_t *out)
    {
        if (remaining() < 2)
            return false;
        *out = static_cast<uint16_t>(
            static_cast<uint8_t>(bytes_[pos_]) |
            (static_cast<uint8_t>(bytes_[pos_ + 1]) << 8));
        pos_ += 2;
        return true;
    }

    bool getBytes(size_t n, std::string *out)
    {
        if (remaining() < n)
            return false;
        out->assign(bytes_, pos_, n);
        pos_ += n;
        return true;
    }

  private:
    const std::string &bytes_;
    size_t pos_;
    size_t end_;
};

std::string
encodeStreamPayload(const CommandStream &stream)
{
    const ScheduleDesc &d = stream.desc;
    std::string out;
    putVarint(out, stream.label.size());
    out.append(stream.label);
    putVarint(out, d.stageTimesNs.size());
    out.push_back(static_cast<char>(d.regime));
    out.push_back(d.replicasAsServers ? 1 : 0);
    putVarint(out, d.totalMicroBatches);
    putVarint(out, d.microBatchesPerBatch);
    putVarint(out, d.seed);
    putVarint(out, d.bufferSlots);
    putFixed64(out, Command::bitsOf(d.writeRetryProb));
    putFixed64(out, Command::bitsOf(d.writeFraction));
    putVarint(out, d.refreshEveryMicroBatches);
    putFixed64(out, Command::bitsOf(d.refreshStallNs));
    putFixed64(out, d.fingerprint());
    for (size_t i = 0; i < d.stageTimesNs.size(); ++i) {
        putFixed64(out, Command::bitsOf(d.stageTimesNs[i]));
        putVarint(out, i < d.replicas.size() ? d.replicas[i] : 1u);
    }
    putVarint(out, stream.commands.size());
    for (const Command &cmd : stream.commands) {
        out.push_back(static_cast<char>(cmd.op));
        putVarint(out, cmd.stage);
        putVarint(out, cmd.microBatch);
        putVarint(out, cmd.operand);
        if (opTimed(cmd.op))
            putFixed64(out, cmd.durationBits);
    }
    return out;
}

bool
decodeStreamPayload(const std::string &payload, size_t index,
                    CommandStream *stream, std::string *error)
{
    const auto fail = [&](const std::string &what) {
        *error = "stream " + std::to_string(index) + ": " + what;
        return false;
    };
    Cursor cur(payload, 0, payload.size());
    uint64_t labelLen = 0;
    if (!cur.getVarint(&labelLen) ||
        !cur.getBytes(labelLen, &stream->label))
        return fail("truncated label");

    ScheduleDesc &d = stream->desc;
    uint64_t numStages = 0;
    if (!cur.getVarint(&numStages))
        return fail("truncated stage count");
    if (numStages == 0)
        return fail("zero stages");
    if (numStages > cur.remaining())
        return fail("stage count exceeds payload size");
    if (cur.remaining() < 2)
        return fail("truncated desc header");
    {
        uint8_t regime = static_cast<uint8_t>(payload[cur.pos()]);
        uint8_t servers =
            static_cast<uint8_t>(payload[cur.pos() + 1]);
        std::string skip;
        cur.getBytes(2, &skip);
        if (regime > static_cast<uint8_t>(Regime::IntraInterBatch))
            return fail("unknown regime byte " +
                        std::to_string(regime));
        if (servers > 1)
            return fail("invalid replicas-as-servers flag");
        d.regime = static_cast<Regime>(regime);
        d.replicasAsServers = servers == 1;
    }
    uint64_t total = 0, perBatch = 0, bufferSlots = 0;
    uint64_t retryBits = 0, fractionBits = 0, stallBits = 0;
    uint64_t refreshEvery = 0, fingerprint = 0;
    if (!cur.getVarint(&total) || !cur.getVarint(&perBatch) ||
        !cur.getVarint(&d.seed) || !cur.getVarint(&bufferSlots) ||
        !cur.getFixed64(&retryBits) ||
        !cur.getFixed64(&fractionBits) ||
        !cur.getVarint(&refreshEvery) ||
        !cur.getFixed64(&stallBits) ||
        !cur.getFixed64(&fingerprint))
        return fail("truncated desc header");
    d.totalMicroBatches = static_cast<uint32_t>(total);
    d.microBatchesPerBatch = static_cast<uint32_t>(perBatch);
    d.bufferSlots = static_cast<uint32_t>(bufferSlots);
    d.writeRetryProb = std::bit_cast<double>(retryBits);
    d.writeFraction = std::bit_cast<double>(fractionBits);
    d.refreshEveryMicroBatches = static_cast<uint32_t>(refreshEvery);
    d.refreshStallNs = std::bit_cast<double>(stallBits);

    d.stageTimesNs.resize(numStages);
    d.replicas.resize(numStages);
    for (uint64_t i = 0; i < numStages; ++i) {
        uint64_t timeBits = 0, replicas = 0;
        if (!cur.getFixed64(&timeBits) || !cur.getVarint(&replicas))
            return fail("truncated stage table");
        d.stageTimesNs[i] = std::bit_cast<double>(timeBits);
        d.replicas[i] = static_cast<uint32_t>(replicas);
    }
    if (d.fingerprint() != fingerprint)
        return fail("desc fingerprint mismatch (corrupt payload)");

    uint64_t commandCount = 0;
    if (!cur.getVarint(&commandCount))
        return fail("truncated command count");
    // Every command costs at least 4 wire bytes; reject counts the
    // remaining payload cannot possibly hold before reserving.
    if (commandCount > cur.remaining() / 4 + 1)
        return fail("command count exceeds payload size");
    stream->commands.resize(commandCount);
    for (uint64_t i = 0; i < commandCount; ++i) {
        Command &cmd = stream->commands[i];
        if (cur.done())
            return fail("truncated at command " + std::to_string(i));
        const uint8_t raw =
            static_cast<uint8_t>(payload[cur.pos()]);
        std::string skip;
        cur.getBytes(1, &skip);
        if (!opcodeKnown(raw))
            return fail("unknown opcode " + std::to_string(raw) +
                        " at command " + std::to_string(i));
        cmd.op = static_cast<Opcode>(raw);
        uint64_t stage = 0, mb = 0;
        if (!cur.getVarint(&stage) || !cur.getVarint(&mb) ||
            !cur.getVarint(&cmd.operand))
            return fail("truncated at command " + std::to_string(i));
        cmd.stage = static_cast<uint32_t>(stage);
        cmd.microBatch = static_cast<uint32_t>(mb);
        if (opTimed(cmd.op) && !cur.getFixed64(&cmd.durationBits))
            return fail("truncated duration at command " +
                        std::to_string(i));
    }
    if (!cur.done())
        return fail(std::to_string(cur.remaining()) +
                    " trailing bytes after the last command");
    return true;
}

} // namespace

std::string
encodeBundle(const TraceBundle &bundle)
{
    std::string out(kTraceMagic, sizeof(kTraceMagic));
    putFixed16(out, kTraceFormatVersion);
    putVarint(out, bundle.streams.size());
    for (const CommandStream &stream : bundle.streams) {
        const std::string payload = encodeStreamPayload(stream);
        putVarint(out, payload.size());
        out.append(payload);
        putFixed64(out, fnv1a64(payload));
    }
    return out;
}

bool
decodeBundle(const std::string &bytes, TraceBundle *bundle,
             std::string *error)
{
    bundle->streams.clear();
    std::string errorStorage;
    if (!error)
        error = &errorStorage;
    Cursor cur(bytes, 0, bytes.size());

    std::string magic;
    if (!cur.getBytes(sizeof(kTraceMagic), &magic) ||
        magic != std::string(kTraceMagic, sizeof(kTraceMagic))) {
        *error = "not a GoPIM ISA trace (bad magic)";
        return false;
    }
    uint16_t version = 0;
    if (!cur.getFixed16(&version)) {
        *error = "truncated version field";
        return false;
    }
    if (version != kTraceFormatVersion) {
        *error = "unsupported trace version " +
                 std::to_string(version) + " (this build reads " +
                 std::to_string(kTraceFormatVersion) + ")";
        return false;
    }
    uint64_t count = 0;
    if (!cur.getVarint(&count)) {
        *error = "truncated stream count";
        return false;
    }
    for (uint64_t i = 0; i < count; ++i) {
        uint64_t payloadLen = 0;
        if (!cur.getVarint(&payloadLen)) {
            *error = "stream " + std::to_string(i) +
                     ": truncated length";
            bundle->streams.clear();
            return false;
        }
        std::string payload;
        uint64_t checksum = 0;
        if (!cur.getBytes(payloadLen, &payload) ||
            !cur.getFixed64(&checksum)) {
            *error = "stream " + std::to_string(i) +
                     ": truncated payload";
            bundle->streams.clear();
            return false;
        }
        if (fnv1a64(payload) != checksum) {
            *error = "stream " + std::to_string(i) +
                     ": checksum mismatch (corrupt trace)";
            bundle->streams.clear();
            return false;
        }
        CommandStream stream;
        if (!decodeStreamPayload(payload, i, &stream, error)) {
            bundle->streams.clear();
            return false;
        }
        bundle->streams.push_back(std::move(stream));
    }
    if (!cur.done()) {
        *error = std::to_string(cur.remaining()) +
                 " trailing bytes after the last stream";
        bundle->streams.clear();
        return false;
    }
    return true;
}

bool
writeTraceFile(const std::string &path, const TraceBundle &bundle,
               std::string *error)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        if (error)
            *error = "cannot open '" + path + "' for writing";
        return false;
    }
    const std::string bytes = encodeBundle(bundle);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
        if (error)
            *error = "write to '" + path + "' failed";
        return false;
    }
    return true;
}

bool
readTraceFile(const std::string &path, TraceBundle *bundle,
              std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open '" + path + "' for reading";
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) {
        if (error)
            *error = "read from '" + path + "' failed";
        return false;
    }
    return decodeBundle(buffer.str(), bundle, error);
}

void
StreamRecorder::record(CommandStream stream)
{
    const uint64_t key = stream.fingerprint();
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = streams_.try_emplace(key);
    // Keep the lexicographically smallest label for a fingerprint so
    // the drained bundle is identical for any run interleaving.
    if (inserted || stream.label < it->second.label)
        it->second = std::move(stream);
}

TraceBundle
StreamRecorder::bundle() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    TraceBundle bundle;
    bundle.streams.reserve(streams_.size());
    for (const auto &[key, stream] : streams_)
        bundle.streams.push_back(stream);
    return bundle;
}

size_t
StreamRecorder::streamCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return streams_.size();
}

} // namespace gopim::isa
