#include "isa/verify.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <utility>

namespace gopim::isa {

const char *
toString(VerifyCode code)
{
    switch (code) {
      case VerifyCode::DescInvalid:
        return "desc-invalid";
      case VerifyCode::CfgOrder:
        return "cfg-order";
      case VerifyCode::CfgMismatch:
        return "cfg-mismatch";
      case VerifyCode::OperandRange:
        return "operand-range";
      case VerifyCode::DurationInvalid:
        return "duration-invalid";
      case VerifyCode::NocUnmatched:
        return "noc-unmatched";
      case VerifyCode::NocDeadlock:
        return "noc-deadlock";
      case VerifyCode::BarrierOrder:
        return "barrier-order";
      case VerifyCode::RefreshInvariant:
        return "refresh-invariant";
      case VerifyCode::SyncMissing:
        return "sync-missing";
      case VerifyCode::SyncMisplaced:
        return "sync-misplaced";
      case VerifyCode::SyncOperand:
        return "sync-operand";
    }
    return "unknown";
}

std::string
VerifyIssue::format() const
{
    return "cmd " + std::to_string(commandIndex) + ": " +
           toString(code) + ": " + message;
}

namespace {

/** Does this opcode carry a service-time payload? */
bool
timedOp(Opcode op)
{
    return op == Opcode::CfgStage || op == Opcode::Mvm ||
           op == Opcode::RowWrite || op == Opcode::Refresh;
}

/** Per-micro-batch work (everything between BARRIER and SYNC). */
bool
workOp(Opcode op)
{
    return op == Opcode::Mvm || op == Opcode::RowWrite ||
           op == Opcode::NocSend || op == Opcode::NocRecv ||
           op == Opcode::Refresh;
}

std::string
describe(const Command &cmd)
{
    std::ostringstream out;
    out << toString(cmd.op) << " stage " << cmd.stage << " mb "
        << cmd.microBatch;
    return out.str();
}

} // namespace

std::vector<VerifyIssue>
verifyStream(const CommandStream &stream)
{
    std::vector<VerifyIssue> issues;
    const auto emit = [&](VerifyCode code, size_t index,
                          std::string message) {
        issues.push_back({code, index, std::move(message)});
    };

    // All flow checks are relative to the header's contract; with an
    // invalid header there is nothing meaningful to check against.
    if (std::string err = stream.desc.validate(); !err.empty()) {
        emit(VerifyCode::DescInvalid, 0, err);
        return issues;
    }
    ScheduleDesc desc = stream.desc;
    desc.normalize();

    const uint32_t numStages =
        static_cast<uint32_t>(desc.stageTimesNs.size());
    const auto [chunkSize, numChunks] = desc.chunkStructure();
    const uint64_t executed =
        static_cast<uint64_t>(chunkSize) * numChunks;

    uint32_t cfgSeen = 0;      // contiguous prologue 0..cfgSeen-1
    bool workStarted = false;  // any non-CFG_STAGE command seen
    uint32_t barrierCount = 0; // chunks opened so far
    // (boundary stage, micro-batch) -> indices of NOC_SENDs still
    // waiting for their NOC_RECV, consumed FIFO.
    std::map<std::pair<uint32_t, uint32_t>, std::vector<size_t>>
        pendingSends;
    std::vector<size_t> syncIndices;

    const size_t n = stream.commands.size();
    for (size_t i = 0; i < n; ++i) {
        const Command &cmd = stream.commands[i];

        // Duration bit patterns: timed ops must decode to a finite,
        // non-negative ns payload; untimed ops must carry zero bits.
        if (timedOp(cmd.op)) {
            const double ns = cmd.durationNs();
            if (!std::isfinite(ns) || ns < 0.0)
                emit(VerifyCode::DurationInvalid, i,
                     describe(cmd) +
                         " duration bits decode to a non-finite or "
                         "negative time");
        } else if (cmd.durationBits != 0) {
            emit(VerifyCode::DurationInvalid, i,
                 describe(cmd) + " is untimed but carries nonzero "
                                 "duration bits");
        }

        if (cmd.op == Opcode::CfgStage) {
            if (workStarted)
                emit(VerifyCode::CfgOrder, i,
                     "CFG_STAGE after work began; the configuration "
                     "prologue must precede all other commands");
            if (cmd.stage >= numStages) {
                emit(VerifyCode::OperandRange, i,
                     describe(cmd) + " configures a stage beyond the "
                                     "header's " +
                         std::to_string(numStages) + " stage(s)");
                continue;
            }
            if (cmd.stage != cfgSeen) {
                emit(VerifyCode::CfgOrder, i,
                     "CFG_STAGE for stage " +
                         std::to_string(cmd.stage) +
                         " out of order (expected stage " +
                         std::to_string(cfgSeen) + ")");
            } else {
                ++cfgSeen;
            }
            if (cmd.operand != desc.replicas[cmd.stage])
                emit(VerifyCode::CfgMismatch, i,
                     "CFG_STAGE stage " + std::to_string(cmd.stage) +
                         " declares " + std::to_string(cmd.operand) +
                         " replica(s); the header says " +
                         std::to_string(desc.replicas[cmd.stage]));
            if (cmd.durationBits !=
                Command::bitsOf(desc.stageTimesNs[cmd.stage]))
                emit(VerifyCode::CfgMismatch, i,
                     "CFG_STAGE stage " + std::to_string(cmd.stage) +
                         " service-time bits differ from the "
                         "header's stage time");
            continue;
        }
        workStarted = true;

        if (cmd.op == Opcode::Barrier) {
            if (cmd.microBatch != barrierCount)
                emit(VerifyCode::BarrierOrder, i,
                     "BARRIER for chunk " +
                         std::to_string(cmd.microBatch) +
                         " out of order (expected chunk " +
                         std::to_string(barrierCount) + ")");
            if (cmd.operand != chunkSize)
                emit(VerifyCode::BarrierOrder, i,
                     "BARRIER drains " + std::to_string(cmd.operand) +
                         " micro-batch(es); the header's chunk size "
                         "is " +
                         std::to_string(chunkSize));
            if (barrierCount >= numChunks)
                emit(VerifyCode::BarrierOrder, i,
                     "BARRIER opens chunk " +
                         std::to_string(barrierCount) +
                         " but the header only executes " +
                         std::to_string(numChunks) + " chunk(s)");
            ++barrierCount;
            continue;
        }

        if (workOp(cmd.op)) {
            if (cmd.stage >= numStages) {
                emit(VerifyCode::OperandRange, i,
                     describe(cmd) + " targets a stage beyond the "
                                     "header's " +
                         std::to_string(numStages) + " stage(s)");
                continue;
            }
            if (cmd.stage >= cfgSeen)
                emit(VerifyCode::CfgOrder, i,
                     describe(cmd) +
                         " executes before its CFG_STAGE configured "
                         "the stage");
            if (cmd.microBatch >= executed) {
                emit(VerifyCode::OperandRange, i,
                     describe(cmd) +
                         " targets a micro-batch beyond the " +
                         std::to_string(executed) +
                         " the header executes");
                continue;
            }
            if (barrierCount == 0) {
                emit(VerifyCode::BarrierOrder, i,
                     describe(cmd) +
                         " appears before the first BARRIER opened "
                         "a chunk");
            } else if (cmd.microBatch / chunkSize !=
                       barrierCount - 1) {
                emit(VerifyCode::BarrierOrder, i,
                     describe(cmd) + " belongs to chunk " +
                         std::to_string(cmd.microBatch / chunkSize) +
                         " but appears inside chunk " +
                         std::to_string(barrierCount - 1));
            }
        }

        switch (cmd.op) {
          case Opcode::NocSend:
            if (cmd.stage + 1 >= numStages) {
                emit(VerifyCode::NocUnmatched, i,
                     describe(cmd) + " has no downstream stage to "
                                     "receive it");
            } else {
                pendingSends[{cmd.stage, cmd.microBatch}]
                    .push_back(i);
            }
            break;
          case Opcode::NocRecv: {
            if (cmd.stage == 0) {
                emit(VerifyCode::NocUnmatched, i,
                     describe(cmd) + " at stage 0 has no upstream "
                                     "sender");
                break;
            }
            auto it = pendingSends.find(
                {cmd.stage - 1, cmd.microBatch});
            if (it == pendingSends.end() || it->second.empty()) {
                emit(VerifyCode::NocDeadlock, i,
                     describe(cmd) +
                         " precedes its matching NOC_SEND from "
                         "stage " +
                         std::to_string(cmd.stage - 1) +
                         "; the receive would block forever");
            } else {
                it->second.erase(it->second.begin());
            }
            break;
          }
          case Opcode::Refresh:
            if (!desc.refreshActive()) {
                emit(VerifyCode::RefreshInvariant, i,
                     describe(cmd) + " but the header declares no "
                                     "active refresh cadence");
            } else {
                if ((cmd.microBatch + 1) %
                        desc.refreshEveryMicroBatches !=
                    0)
                    emit(VerifyCode::RefreshInvariant, i,
                         describe(cmd) +
                             " off the header's every-" +
                             std::to_string(
                                 desc.refreshEveryMicroBatches) +
                             "-micro-batch cadence");
                if (cmd.durationBits !=
                    Command::bitsOf(desc.refreshStallNs))
                    emit(VerifyCode::RefreshInvariant, i,
                         describe(cmd) +
                             " stall bits differ from the header's "
                             "refresh stall");
            }
            break;
          case Opcode::Sync:
            syncIndices.push_back(i);
            break;
          default:
            break;
        }
    }

    // Stream-level bookkeeping after the walk.
    for (const auto &[key, indices] : pendingSends) {
        for (size_t i : indices)
            emit(VerifyCode::NocUnmatched, i,
                 describe(stream.commands[i]) +
                     " is never received by stage " +
                     std::to_string(key.first + 1));
    }
    if (syncIndices.empty()) {
        emit(VerifyCode::SyncMissing, n,
             "stream has no SYNC terminator");
    } else {
        for (size_t i : syncIndices) {
            if (i != n - 1)
                emit(VerifyCode::SyncMisplaced, i,
                     "SYNC must be the single final command (" +
                         std::to_string(n - 1 - i) +
                         " command(s) follow)");
        }
        const Command &sync = stream.commands.back();
        if (sync.op == Opcode::Sync && sync.operand != n - 1)
            emit(VerifyCode::SyncOperand, n - 1,
                 "SYNC operand " + std::to_string(sync.operand) +
                     " != " + std::to_string(n - 1) +
                     " preceding command(s)");
    }

    std::stable_sort(issues.begin(), issues.end(),
                     [](const VerifyIssue &a, const VerifyIssue &b) {
                         return a.commandIndex < b.commandIndex;
                     });
    return issues;
}

std::string
verifySummary(const CommandStream &stream)
{
    const std::vector<VerifyIssue> issues = verifyStream(stream);
    if (issues.empty())
        return "";
    return issues.front().format() + " (" +
           std::to_string(issues.size()) + " issue(s))";
}

} // namespace gopim::isa
