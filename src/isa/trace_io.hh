/**
 * @file
 * Versioned binary trace format for PIM command streams.
 *
 * File layout (all multi-byte integers little-endian):
 *
 *   magic   "GPIS"                       4 bytes
 *   version u16                          currently 1
 *   count   varint                       number of streams
 *   streams repeated `count` times:
 *     length   varint                    payload byte count
 *     payload  `length` bytes            one encoded CommandStream
 *     checksum u64                       FNV-1a over the payload
 *
 * A stream payload packs the label, the full ScheduleDesc (doubles
 * as fixed 8-byte IEEE-754 bit patterns — the replay bit-identity
 * contract), the desc fingerprint (re-verified on read), and the
 * command records. Small integers use LEB128 varints; command
 * durations ride as fixed 8-byte bit patterns only on the opcodes
 * that carry time (CFG_STAGE, MVM, ROW_WRITE, REFRESH).
 *
 * The reader is total: magic/version mismatches, truncation at any
 * byte, checksum or fingerprint corruption, unknown opcodes, and
 * trailing garbage all surface as distinct error strings, never as
 * crashes. Encoding is canonical — decode(encode(bundle)) is
 * byte-exact, which the golden-fixture tests pin.
 */

#ifndef GOPIM_ISA_TRACE_IO_HH
#define GOPIM_ISA_TRACE_IO_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "isa/isa.hh"

namespace gopim::isa {

/** Current writer format version. */
inline constexpr uint16_t kTraceFormatVersion = 1;

/** The file magic ("GPIS"). */
extern const char kTraceMagic[4];

/** An ordered set of command streams, as stored in one trace file. */
struct TraceBundle
{
    std::vector<CommandStream> streams;

    /** Stream with this desc fingerprint, or nullptr. */
    const CommandStream *find(uint64_t fingerprint) const;
};

/** Serialize the bundle into the canonical trace byte string. */
std::string encodeBundle(const TraceBundle &bundle);

/**
 * Parse trace bytes. Returns false and sets `*error` (when non-null)
 * on any malformed input; `*bundle` is left empty in that case.
 */
bool decodeBundle(const std::string &bytes, TraceBundle *bundle,
                  std::string *error);

/** Write the bundle to `path`; false + `*error` on I/O failure. */
bool writeTraceFile(const std::string &path,
                    const TraceBundle &bundle, std::string *error);

/** Read and decode `path`; false + `*error` on I/O or format error. */
bool readTraceFile(const std::string &path, TraceBundle *bundle,
                   std::string *error);

/**
 * Thread-safe collector the engines record lowered streams into
 * (attach via sim::SimContext::isaRecorder, drain with
 * core::writeIsaTraceIfRequested). Streams are keyed by desc
 * fingerprint: duplicates collapse to one entry whose label is the
 * lexicographically smallest seen, so the drained bundle is
 * byte-identical for any worker count or run interleaving.
 */
class StreamRecorder
{
  public:
    /** Record one stream (deduplicated by fingerprint). */
    void record(CommandStream stream);

    /** Streams recorded so far, ordered by fingerprint. */
    TraceBundle bundle() const;

    size_t streamCount() const;

  private:
    mutable std::mutex mutex_;
    std::map<uint64_t, CommandStream> streams_;
};

} // namespace gopim::isa

#endif // GOPIM_ISA_TRACE_IO_HH
