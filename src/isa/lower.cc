#include "isa/lower.hh"

#include "common/logging.hh"

namespace gopim::isa {

CommandStream
lowerSchedule(const ScheduleDesc &desc, std::string label)
{
    // Surface the specific diagnostic: each misuse (no stages, no
    // micro-batches, out-of-range retry probability, ...) dies with
    // its own message, so callers and tests can tell them apart.
    if (const std::string problem = desc.validate(); !problem.empty())
        panic("cannot lower invalid schedule desc: ", problem);
    CommandStream stream;
    stream.label = std::move(label);
    stream.desc = desc;
    stream.desc.normalize();

    const ScheduleDesc &d = stream.desc;
    const uint32_t numStages =
        static_cast<uint32_t>(d.stageTimesNs.size());
    const auto [chunkSize, numChunks] = d.chunkStructure();
    const bool retryModel = d.writeRetryProb > 0.0;
    const bool refresh = d.refreshActive();

    // Per-stage MVM/ROW_WRITE split of the base service time. When
    // the retry model is off the whole base time rides on MVM and no
    // ROW_WRITE op exists; when on, the split mirrors
    // sim::makeWriteRetrySampler exactly (bit-for-bit arithmetic).
    std::vector<uint64_t> mvmBits(numStages);
    std::vector<uint64_t> writeBits(numStages, 0);
    for (uint32_t s = 0; s < numStages; ++s) {
        const double base = d.stageTimesNs[s];
        if (retryModel) {
            mvmBits[s] =
                Command::bitsOf(base * (1.0 - d.writeFraction));
            writeBits[s] = Command::bitsOf(base * d.writeFraction);
        } else {
            mvmBits[s] = Command::bitsOf(base);
        }
    }
    const uint64_t refreshBits =
        refresh ? Command::bitsOf(d.refreshStallNs) : 0;

    auto &out = stream.commands;
    const size_t perMb =
        static_cast<size_t>(numStages) * (retryModel ? 4 : 3);
    out.reserve(numStages + numChunks +
                static_cast<size_t>(chunkSize) * numChunks * perMb +
                1);

    for (uint32_t s = 0; s < numStages; ++s)
        out.push_back({Opcode::CfgStage, s, 0, d.replicas[s],
                       Command::bitsOf(d.stageTimesNs[s])});

    for (uint32_t chunk = 0; chunk < numChunks; ++chunk) {
        out.push_back({Opcode::Barrier, 0, chunk, chunkSize, 0});
        for (uint32_t j = 0; j < chunkSize; ++j) {
            const uint32_t g = chunk * chunkSize + j;
            for (uint32_t s = 0; s < numStages; ++s) {
                if (s > 0)
                    out.push_back({Opcode::NocRecv, s, g, 0, 0});
                out.push_back({Opcode::Mvm, s, g, 0, mvmBits[s]});
                if (retryModel)
                    out.push_back(
                        {Opcode::RowWrite, s, g, 1, writeBits[s]});
                if (refresh &&
                    (g + 1) % d.refreshEveryMicroBatches == 0)
                    out.push_back(
                        {Opcode::Refresh, s, g, 0, refreshBits});
                if (s + 1 < numStages)
                    out.push_back({Opcode::NocSend, s, g, 0, 0});
            }
        }
    }
    out.push_back({Opcode::Sync, 0, 0, out.size(), 0});
    return stream;
}

void
applyRepairPlan(ScheduleDesc &desc, const fault::RepairPlan &plan)
{
    // Mirrors core::Accelerator::runWithEstimates: only an active
    // refresh cadence reaches the scheduling problem.
    if (plan.refreshEveryMicroBatches > 0) {
        desc.refreshEveryMicroBatches = plan.refreshEveryMicroBatches;
        desc.refreshStallNs = plan.refreshStallNs;
    }
}

} // namespace gopim::isa
