/**
 * @file
 * Semantic verifier for PIM command streams: producer-agnostic flow
 * checks over a decoded CommandStream, strictly weaker than
 * validateStream()'s canonical-lowering equality. validateStream
 * accepts exactly one instruction sequence per desc; verifyStream
 * accepts any stream whose control flow is executable — CFG_STAGE
 * prologue before work, NOC_SEND/NOC_RECV pairing with no
 * recv-before-send deadlock, BARRIER/SYNC bracketing, finite
 * non-negative duration bit patterns, and the refresh cadence the
 * header promises. This is the PIMSIM-NN-style contract at the ISA
 * boundary: a malformed trace is rejected before any timing model
 * sees it (gopim_trace --verify-semantics, ReplayEngine trace mode).
 */

#ifndef GOPIM_ISA_VERIFY_HH
#define GOPIM_ISA_VERIFY_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.hh"

namespace gopim::isa {

/**
 * Verifier error taxonomy. Each code names one violated stream
 * invariant; DESIGN.md §3j documents the full contract per code.
 */
enum class VerifyCode : uint8_t
{
    DescInvalid,      ///< header fails ScheduleDesc::validate()
    CfgOrder,         ///< CFG_STAGE prologue malformed or after work
    CfgMismatch,      ///< CFG_STAGE operand/duration contradict desc
    OperandRange,     ///< stage/micro-batch outside the executed range
    DurationInvalid,  ///< duration bits not a finite ns >= 0 (or a
                      ///< nonzero payload on an untimed op)
    NocUnmatched,     ///< send/recv without a counterpart
    NocDeadlock,      ///< NOC_RECV precedes its matching NOC_SEND
    BarrierOrder,     ///< chunk barriers out of order / work outside
                      ///< its chunk's bracket
    RefreshInvariant, ///< refresh op contradicts the header cadence
    SyncMissing,      ///< stream has no SYNC terminator
    SyncMisplaced,    ///< SYNC not the single final command
    SyncOperand,      ///< SYNC operand != preceding command count
};

/** Stable kebab-case rule id ("noc-deadlock", ...). */
const char *toString(VerifyCode code);

/** One semantic violation, anchored to a command index. */
struct VerifyIssue
{
    VerifyCode code = VerifyCode::DescInvalid;
    /** Index of the offending command (== commands.size() for
     *  stream-level issues like a missing SYNC). */
    size_t commandIndex = 0;
    std::string message;

    /** Render as `cmd <index>: <code>: <message>`. */
    std::string format() const;
};

/**
 * Run every semantic check over the stream. Returns all violations
 * in command order (empty = semantically well-formed). A stream that
 * passes validateStream() always passes verifyStream(); the converse
 * does not hold.
 */
std::vector<VerifyIssue> verifyStream(const CommandStream &stream);

/**
 * Convenience for fatal paths: "" when clean, else the first issue
 * plus a total count ("cmd 12: noc-deadlock: ... (3 issue(s))").
 */
std::string verifySummary(const CommandStream &stream);

} // namespace gopim::isa

#endif // GOPIM_ISA_VERIFY_HH
