/**
 * @file
 * Lowering: compile a scheduling problem into a PIM command stream.
 *
 * The pass is deterministic and total — the same ScheduleDesc always
 * produces the same instruction sequence, and validateStream() checks
 * a stream against exactly this lowering. Layout of the emitted
 * program:
 *
 *   CFG_STAGE s=0..N-1            replicas + base service time
 *   for each drain chunk c:
 *     BARRIER  c                  pipeline drains before the chunk
 *     for each micro-batch g in the chunk (global index):
 *       for each stage s:
 *         NOC_RECV s,g            when s > 0
 *         MVM      s,g            compute part (full time when the
 *                                 write-retry model is off)
 *         ROW_WRITE s,g           write-verify part, nominal single
 *                                 attempt (retry model on only)
 *         REFRESH  s,g            when (g+1) % refreshEvery == 0
 *         NOC_SEND s,g            when s < N-1
 *   SYNC                          operand = command count before it
 *
 * Invariants the replay contract depends on: MVM/ROW_WRITE durations
 * are exact IEEE-754 splits of the stage base time (base*(1-wf) and
 * base*wf, matching sim::makeWriteRetrySampler bit for bit), REFRESH
 * uses the global micro-batch index so chunked regimes refresh at
 * the same points as a live event run, and chunks truncated by the
 * IntraBatch batch structure are simply not emitted (neither engine
 * executes them).
 */

#ifndef GOPIM_ISA_LOWER_HH
#define GOPIM_ISA_LOWER_HH

#include <string>

#include "fault/repair.hh"
#include "isa/isa.hh"

namespace gopim::isa {

/**
 * Lower `desc` into its canonical command stream. Panics on an
 * invalid desc (use desc.validate() first for user-supplied input).
 */
CommandStream lowerSchedule(const ScheduleDesc &desc,
                            std::string label = "");

/**
 * Fold a fault-repair timing plan into the desc the way the
 * accelerator folds it into the engine knobs: an active refresh
 * cadence overrides the desc's, an inactive plan leaves it alone.
 * (Write amplification and remap stalls act on stage times / the
 * final makespan outside the scheduling problem, so they are already
 * reflected in `stageTimesNs` by the time a desc is built.)
 */
void applyRepairPlan(ScheduleDesc &desc,
                     const fault::RepairPlan &plan);

} // namespace gopim::isa

#endif // GOPIM_ISA_LOWER_HH
