#include "pipeline/gantt.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"

namespace gopim::pipeline {

std::string
renderGantt(const std::vector<Stage> &stages,
            const ScheduleResult &schedule, GanttOptions options)
{
    GOPIM_ASSERT(stages.size() == schedule.windows.size(),
                 "gantt: stage/schedule mismatch");
    GOPIM_ASSERT(options.width >= 8, "gantt too narrow");

    const uint32_t drawnMb = std::min<uint32_t>(
        options.maxMicroBatches,
        static_cast<uint32_t>(schedule.windows.front().size()));
    // Time horizon: end of the last drawn micro-batch.
    double horizon = 0.0;
    for (const auto &row : schedule.windows)
        horizon = std::max(horizon, row[drawnMb - 1].endNs);
    GOPIM_ASSERT(horizon > 0.0, "gantt over empty schedule");

    const double nsPerCol = horizon / static_cast<double>(options.width);

    size_t labelWidth = 0;
    for (const auto &s : stages)
        labelWidth = std::max(labelWidth, s.label().size());

    std::ostringstream os;
    os << "time: 0 .. " << formatTimeNs(horizon);
    if (drawnMb < schedule.windows.front().size())
        os << " (first " << drawnMb << " of "
           << schedule.windows.front().size() << " micro-batches)";
    os << "\n";

    for (size_t i = 0; i < stages.size(); ++i) {
        std::string line(options.width, '.');
        for (uint32_t j = 0; j < drawnMb; ++j) {
            const auto &w = schedule.windows[i][j];
            auto begin = static_cast<size_t>(w.startNs / nsPerCol);
            auto end = static_cast<size_t>(w.endNs / nsPerCol);
            begin = std::min(begin, options.width - 1);
            end = std::min(std::max(end, begin + 1), options.width);
            const char mark = static_cast<char>('0' + j % 10);
            for (size_t c = begin; c < end; ++c)
                line[c] = mark;
        }
        std::string label = stages[i].label();
        label.resize(labelWidth, ' ');
        os << label << " |" << line << "|\n";
    }
    return os.str();
}

} // namespace gopim::pipeline
