/**
 * @file
 * ASCII Gantt rendering of a pipeline schedule — the visual the
 * paper's Fig. 5 and Fig. 10 timelines use, for terminals.
 */

#ifndef GOPIM_PIPELINE_GANTT_HH
#define GOPIM_PIPELINE_GANTT_HH

#include <string>
#include <vector>

#include "pipeline/schedule.hh"
#include "pipeline/stage.hh"

namespace gopim::pipeline {

/** Rendering options. */
struct GanttOptions
{
    /** Character columns available for the time axis. */
    size_t width = 72;
    /** Cap on micro-batches drawn (the rest is elided). */
    uint32_t maxMicroBatches = 16;
};

/**
 * Render the schedule as one row per stage. Each micro-batch's busy
 * window is drawn with a distinct digit (micro-batch index mod 10);
 * '.' marks idle time. Stage labels come from `stages`.
 */
std::string renderGantt(const std::vector<Stage> &stages,
                        const ScheduleResult &schedule,
                        GanttOptions options = {});

} // namespace gopim::pipeline

#endif // GOPIM_PIPELINE_GANTT_HH
