/**
 * @file
 * Idle-time reporting over pipeline schedules (Figs. 4 and 15).
 */

#ifndef GOPIM_PIPELINE_STATS_HH
#define GOPIM_PIPELINE_STATS_HH

#include <string>
#include <vector>

#include "common/table.hh"
#include "pipeline/schedule.hh"
#include "pipeline/stage.hh"

namespace gopim::pipeline {

/** Per-stage idle summary of one scheduled run. */
struct IdleReport
{
    std::vector<std::string> stageLabels;
    std::vector<double> idlePercent;
    double avgIdlePercent = 0.0;
};

/** Build an idle report from a schedule and its stage descriptors. */
IdleReport buildIdleReport(const std::vector<Stage> &stages,
                           const ScheduleResult &schedule);

/** Render an idle report as a Table ("XBSi" columns, Fig. 4 style). */
Table idleReportTable(const std::string &title, const IdleReport &report);

} // namespace gopim::pipeline

#endif // GOPIM_PIPELINE_STATS_HH
