/**
 * @file
 * GCN training stage descriptors. An L-layer model trains in 4L stages
 * (Section V-B): CO1, AG1, ..., COL, AGL, then LCL, GCL, ..., LC1, GC1
 * in the backward pass.
 */

#ifndef GOPIM_PIPELINE_STAGE_HH
#define GOPIM_PIPELINE_STAGE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gopim::pipeline {

/** The four stage types of GCN training (Section II-A). */
enum class StageType
{
    Combination,     ///< CO: feature x weight MVM
    Aggregation,     ///< AG: adjacency x feature MVM + vertex updates
    LossCompute,     ///< LC: backward error propagation
    GradientCompute, ///< GC: weight gradient accumulation
};

/** Short paper-style stage code ("CO", "AG", "LC", "GC"). */
std::string toString(StageType t);

/** One pipeline stage of one layer. */
struct Stage
{
    StageType type = StageType::Combination;
    uint32_t layer = 0; ///< 1-based layer index

    /** Paper-style label, e.g. "AG2". */
    std::string label() const;
};

/**
 * Build the 4L-stage training sequence for an L-layer GCN:
 * forward CO/AG per layer, then backward LC/GC from layer L down to 1.
 */
std::vector<Stage> buildTrainingStages(uint32_t numLayers);

/** True for stages whose crossbars map vertex features (AG). */
bool mapsVertexFeatures(StageType t);

} // namespace gopim::pipeline

#endif // GOPIM_PIPELINE_STAGE_HH
