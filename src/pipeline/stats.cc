#include "pipeline/stats.hh"

#include "common/logging.hh"
#include "common/math_utils.hh"

namespace gopim::pipeline {

IdleReport
buildIdleReport(const std::vector<Stage> &stages,
                const ScheduleResult &schedule)
{
    GOPIM_ASSERT(stages.size() == schedule.idleFraction.size(),
                 "stage/schedule size mismatch");
    IdleReport report;
    report.stageLabels.reserve(stages.size());
    report.idlePercent.reserve(stages.size());
    for (size_t i = 0; i < stages.size(); ++i) {
        report.stageLabels.push_back(stages[i].label());
        report.idlePercent.push_back(schedule.idleFraction[i] * 100.0);
    }
    report.avgIdlePercent = mean(report.idlePercent);
    return report;
}

Table
idleReportTable(const std::string &title, const IdleReport &report)
{
    Table table(title, {"stage group", "idle %"});
    for (size_t i = 0; i < report.stageLabels.size(); ++i) {
        table.row()
            .cell("XBS" + std::to_string(i + 1) + " (" +
                  report.stageLabels[i] + ")")
            .cell(report.idlePercent[i], 2);
    }
    table.row().cell("average").cell(report.avgIdlePercent, 2);
    return table;
}

} // namespace gopim::pipeline
