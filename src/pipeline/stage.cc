#include "pipeline/stage.hh"

#include "common/logging.hh"

namespace gopim::pipeline {

std::string
toString(StageType t)
{
    switch (t) {
      case StageType::Combination:
        return "CO";
      case StageType::Aggregation:
        return "AG";
      case StageType::LossCompute:
        return "LC";
      case StageType::GradientCompute:
        return "GC";
    }
    panic("unknown stage type");
}

std::string
Stage::label() const
{
    return toString(type) + std::to_string(layer);
}

std::vector<Stage>
buildTrainingStages(uint32_t numLayers)
{
    GOPIM_ASSERT(numLayers >= 1, "GCN needs at least one layer");
    std::vector<Stage> stages;
    stages.reserve(4ull * numLayers);
    for (uint32_t l = 1; l <= numLayers; ++l) {
        stages.push_back({StageType::Combination, l});
        stages.push_back({StageType::Aggregation, l});
    }
    for (uint32_t l = numLayers; l >= 1; --l) {
        stages.push_back({StageType::LossCompute, l});
        stages.push_back({StageType::GradientCompute, l});
    }
    return stages;
}

bool
mapsVertexFeatures(StageType t)
{
    return t == StageType::Aggregation;
}

} // namespace gopim::pipeline
