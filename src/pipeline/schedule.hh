/**
 * @file
 * Micro-batch pipeline schedule over a linear stage chain.
 *
 * Implements the paper's Eq. (3)-(6): stage i of micro-batch j starts
 * no earlier than stage i-1 of the same micro-batch and stage i of the
 * previous micro-batch. For identical per-micro-batch stage times the
 * exact recurrence collapses to the closed form
 * T_A = sum_i T_i + (B - 1) * max_i T_i, which computeExact() verifies
 * against in the test suite.
 */

#ifndef GOPIM_PIPELINE_SCHEDULE_HH
#define GOPIM_PIPELINE_SCHEDULE_HH

#include <cstdint>
#include <vector>

namespace gopim::pipeline {

/** Per-stage interval in the computed timeline. */
struct StageWindow
{
    double startNs = 0.0;
    double endNs = 0.0;
};

/** Result of scheduling B micro-batches through N stages. */
struct ScheduleResult
{
    double makespanNs = 0.0;
    /** Busy time of each stage's crossbar group over the whole run. */
    std::vector<double> busyNs;
    /** Idle fraction of each stage's group: 1 - busy / makespan. */
    std::vector<double> idleFraction;
    /** Start/end of every (stage, micro-batch) pair; stage-major. */
    std::vector<std::vector<StageWindow>> windows;

    /** Average idle fraction across stages. */
    double avgIdleFraction() const;
};

/**
 * Exact event-driven pipeline schedule (Eqs. 3-4) for per-stage,
 * per-micro-batch execution times. stageTimesNs[i] applies to every
 * micro-batch of stage i; B is the micro-batch count.
 *
 * `recordWindows` (here and below) controls whether the per-(stage,
 * micro-batch) windows are materialized. false skips the O(stages x
 * B) allocation — the recurrence runs on rolling state with the
 * exact same arithmetic, so makespan/busy/idle are bit-identical —
 * for callers that only consume the summaries (the closed-form
 * engine outside traced runs).
 */
ScheduleResult schedulePipelined(const std::vector<double> &stageTimesNs,
                                 uint32_t numMicroBatches,
                                 bool recordWindows = true);

/**
 * Serial (non-pipelined) schedule: micro-batches and stages strictly
 * in sequence, as the paper's Serial baseline executes.
 */
ScheduleResult scheduleSerial(const std::vector<double> &stageTimesNs,
                              uint32_t numMicroBatches,
                              bool recordWindows = true);

/** Closed-form pipelined makespan (Eq. 6). */
double pipelinedMakespanNs(const std::vector<double> &stageTimesNs,
                           uint32_t numMicroBatches);

/**
 * General flow-shop recurrence with per-(stage, micro-batch) times —
 * Eq. 6's closed form only holds when every micro-batch takes the
 * same time per stage, but a real epoch's last micro-batch is ragged
 * (|V| mod B vertices). times[i][j] is stage i's time for micro-batch
 * j; all stages must list the same micro-batch count.
 */
ScheduleResult schedulePipelinedVariable(
    const std::vector<std::vector<double>> &timesNs);

/**
 * Pipelined schedule with an inter-batch barrier every
 * `microBatchesPerBatch` micro-batches: the pipeline drains at each
 * weight update, modeling intra-batch-only pipelining (SlimGNN-like /
 * ReGraphX). Total micro-batches = batches x microBatchesPerBatch.
 */
ScheduleResult scheduleIntraBatchOnly(
    const std::vector<double> &stageTimesNs,
    uint32_t microBatchesPerBatch, uint32_t numBatches,
    bool recordWindows = true);

} // namespace gopim::pipeline

#endif // GOPIM_PIPELINE_SCHEDULE_HH
