#include "pipeline/schedule.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/math_utils.hh"

namespace gopim::pipeline {

double
ScheduleResult::avgIdleFraction() const
{
    return mean(idleFraction);
}

namespace {

/** Fill busy/idle summaries from the windows and makespan. */
void
finalize(ScheduleResult &result, const std::vector<double> &stageTimesNs,
         uint32_t numMicroBatches)
{
    const size_t numStages = stageTimesNs.size();
    result.busyNs.resize(numStages);
    result.idleFraction.resize(numStages);
    for (size_t i = 0; i < numStages; ++i) {
        result.busyNs[i] = stageTimesNs[i] * numMicroBatches;
        result.idleFraction[i] =
            result.makespanNs > 0.0
                ? 1.0 - result.busyNs[i] / result.makespanNs
                : 0.0;
        result.idleFraction[i] =
            std::clamp(result.idleFraction[i], 0.0, 1.0);
    }
}

} // namespace

ScheduleResult
schedulePipelined(const std::vector<double> &stageTimesNs,
                  uint32_t numMicroBatches, bool recordWindows)
{
    GOPIM_ASSERT(!stageTimesNs.empty(), "schedule with no stages");
    GOPIM_ASSERT(numMicroBatches >= 1, "need at least one micro-batch");

    const size_t numStages = stageTimesNs.size();
    ScheduleResult result;
    if (recordWindows)
        result.windows.assign(numStages,
                              std::vector<StageWindow>(numMicroBatches));

    // prevEnd[i] holds stage i's end time for the previous
    // micro-batch, so the recurrence needs only O(stages) state when
    // windows are not recorded. The arithmetic — operand values and
    // order — is identical either way.
    std::vector<double> prevEnd(numStages, 0.0);
    for (uint32_t j = 0; j < numMicroBatches; ++j) {
        double prevStageEnd = 0.0;
        for (size_t i = 0; i < numStages; ++i) {
            // Eq. (3): wait for this stage's previous micro-batch.
            double start = j > 0 ? prevEnd[i] : 0.0;
            // Eq. (4): wait for the previous stage of this micro-batch.
            if (i > 0)
                start = std::max(start, prevStageEnd);
            const double end = start + stageTimesNs[i];
            if (recordWindows) {
                result.windows[i][j].startNs = start;
                result.windows[i][j].endNs = end;
            }
            prevEnd[i] = end;
            prevStageEnd = end;
        }
    }
    result.makespanNs = prevEnd.back();
    finalize(result, stageTimesNs, numMicroBatches);
    return result;
}

ScheduleResult
scheduleSerial(const std::vector<double> &stageTimesNs,
               uint32_t numMicroBatches, bool recordWindows)
{
    GOPIM_ASSERT(!stageTimesNs.empty(), "schedule with no stages");
    GOPIM_ASSERT(numMicroBatches >= 1, "need at least one micro-batch");

    const size_t numStages = stageTimesNs.size();
    ScheduleResult result;
    if (recordWindows)
        result.windows.assign(numStages,
                              std::vector<StageWindow>(numMicroBatches));

    double clock = 0.0;
    for (uint32_t j = 0; j < numMicroBatches; ++j) {
        for (size_t i = 0; i < numStages; ++i) {
            if (recordWindows)
                result.windows[i][j].startNs = clock;
            clock += stageTimesNs[i];
            if (recordWindows)
                result.windows[i][j].endNs = clock;
        }
    }
    result.makespanNs = clock;
    finalize(result, stageTimesNs, numMicroBatches);
    return result;
}

ScheduleResult
schedulePipelinedVariable(
    const std::vector<std::vector<double>> &timesNs)
{
    GOPIM_ASSERT(!timesNs.empty(), "schedule with no stages");
    const size_t numStages = timesNs.size();
    const size_t numMicroBatches = timesNs.front().size();
    GOPIM_ASSERT(numMicroBatches >= 1, "need at least one micro-batch");
    for (const auto &row : timesNs)
        GOPIM_ASSERT(row.size() == numMicroBatches,
                     "ragged per-stage micro-batch counts");

    ScheduleResult result;
    result.windows.assign(numStages,
                          std::vector<StageWindow>(numMicroBatches));
    for (size_t j = 0; j < numMicroBatches; ++j) {
        for (size_t i = 0; i < numStages; ++i) {
            double start =
                j > 0 ? result.windows[i][j - 1].endNs : 0.0;
            if (i > 0)
                start = std::max(start, result.windows[i - 1][j].endNs);
            result.windows[i][j].startNs = start;
            result.windows[i][j].endNs = start + timesNs[i][j];
        }
    }
    result.makespanNs = result.windows.back().back().endNs;

    result.busyNs.resize(numStages);
    result.idleFraction.resize(numStages);
    for (size_t i = 0; i < numStages; ++i) {
        double busy = 0.0;
        for (double t : timesNs[i])
            busy += t;
        result.busyNs[i] = busy;
        result.idleFraction[i] =
            result.makespanNs > 0.0
                ? std::clamp(1.0 - busy / result.makespanNs, 0.0,
                             1.0)
                : 0.0;
    }
    return result;
}

double
pipelinedMakespanNs(const std::vector<double> &stageTimesNs,
                    uint32_t numMicroBatches)
{
    GOPIM_ASSERT(!stageTimesNs.empty(), "schedule with no stages");
    double sum = 0.0;
    double maxTime = 0.0;
    for (double t : stageTimesNs) {
        sum += t;
        maxTime = std::max(maxTime, t);
    }
    return sum + static_cast<double>(numMicroBatches - 1) * maxTime;
}

ScheduleResult
scheduleIntraBatchOnly(const std::vector<double> &stageTimesNs,
                       uint32_t microBatchesPerBatch,
                       uint32_t numBatches, bool recordWindows)
{
    GOPIM_ASSERT(numBatches >= 1, "need at least one batch");
    // One batch pipelines internally, then the pipeline drains before
    // the next batch starts (weight update barrier).
    ScheduleResult perBatch = schedulePipelined(
        stageTimesNs, microBatchesPerBatch, recordWindows);

    ScheduleResult result;
    const size_t numStages = stageTimesNs.size();
    const uint32_t totalMb = microBatchesPerBatch * numBatches;
    if (recordWindows) {
        result.windows.assign(numStages,
                              std::vector<StageWindow>(totalMb));
        for (uint32_t b = 0; b < numBatches; ++b) {
            const double offset =
                perBatch.makespanNs * static_cast<double>(b);
            for (size_t i = 0; i < numStages; ++i) {
                for (uint32_t j = 0; j < microBatchesPerBatch; ++j) {
                    auto &dst =
                        result
                            .windows[i][b * microBatchesPerBatch + j];
                    dst.startNs =
                        perBatch.windows[i][j].startNs + offset;
                    dst.endNs = perBatch.windows[i][j].endNs + offset;
                }
            }
        }
    }
    result.makespanNs =
        perBatch.makespanNs * static_cast<double>(numBatches);
    finalize(result, stageTimesNs, totalMb);
    return result;
}

} // namespace gopim::pipeline
