/**
 * @file
 * Result serialization: RunResult and comparison grids to JSON (for
 * downstream analysis scripts) and CSV (for spreadsheets), used by
 * the gopim_sim tool, the benchmark harnesses (--json-out), and the
 * serving layer — all through the same common/json writer, so the
 * byte format never drifts between entry points.
 *
 * Also home of run-config canonicalization: a canonical JSON
 * description of everything that determines a run's result (dataset
 * statistics, system configuration, simulation context, hardware
 * geometry), which the serving layer hashes into content-addressed
 * cache keys.
 */

#ifndef GOPIM_CORE_REPORT_HH
#define GOPIM_CORE_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "core/accelerator.hh"
#include "core/harness.hh"
#include "core/result.hh"

namespace gopim::core {

/** One run as a JSON object value. */
json::Value runResultToJson(const RunResult &run);

/** A comparison grid as a JSON array of run objects. */
json::Value gridToJson(const std::vector<ComparisonRow> &rows);

/**
 * Canonical description of every input that determines a run's
 * result: dataset statistics, model shape, batching, the system's
 * policy/allocator/pipeline configuration, the simulation context
 * (engine, seed, event knobs), and the hardware geometry. Two runs
 * with equal canonical configs produce bit-identical results, which
 * is the contract the serving layer's content-addressed cache keys
 * rely on (serialize with Value::canonical() so member order never
 * matters).
 */
json::Value canonicalRunConfig(const SystemConfig &system,
                               const reram::AcceleratorConfig &hw,
                               const gcn::Workload &workload);

/**
 * The sim-independent prefix of canonicalRunConfig: every input that
 * determines the Accelerator's *plan* (mapping artifacts, stage
 * costs, fault/repair planning, replica allocation) but not how the
 * plan is timed. The sim section — engine, seed, event knobs — only
 * affects scheduling, so two runs with equal prefixes can share one
 * StagePlan (core::PlanCache keys on this). canonicalRunConfig is
 * this prefix plus the "sim" section.
 */
json::Value planConfigPrefix(const SystemConfig &system,
                             const reram::AcceleratorConfig &hw,
                             const gcn::Workload &workload);

/** Serialize one run as a JSON object. */
void writeRunJson(const RunResult &run, std::ostream &os,
                  int indent = 0);

/** Serialize a comparison grid as a JSON array of run objects. */
void writeGridJson(const std::vector<ComparisonRow> &rows,
                   std::ostream &os);

/**
 * Serialize a comparison grid as CSV: one row per (dataset, system)
 * with makespan, energy, and normalized ratios vs the first system.
 */
void writeGridCsv(const std::vector<ComparisonRow> &rows,
                  std::ostream &os);

/** Escape a string for embedding in JSON. */
std::string jsonEscape(const std::string &s);

} // namespace gopim::core

#endif // GOPIM_CORE_REPORT_HH
