/**
 * @file
 * Result serialization: RunResult and comparison grids to JSON (for
 * downstream analysis scripts) and CSV (for spreadsheets), used by
 * the gopim_sim tool and the benchmark harnesses.
 */

#ifndef GOPIM_CORE_REPORT_HH
#define GOPIM_CORE_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "core/harness.hh"
#include "core/result.hh"

namespace gopim::core {

/** Serialize one run as a JSON object. */
void writeRunJson(const RunResult &run, std::ostream &os,
                  int indent = 0);

/** Serialize a comparison grid as a JSON array of run objects. */
void writeGridJson(const std::vector<ComparisonRow> &rows,
                   std::ostream &os);

/**
 * Serialize a comparison grid as CSV: one row per (dataset, system)
 * with makespan, energy, and normalized ratios vs the first system.
 */
void writeGridCsv(const std::vector<ComparisonRow> &rows,
                  std::ostream &os);

/** Escape a string for embedding in JSON. */
std::string jsonEscape(const std::string &s);

} // namespace gopim::core

#endif // GOPIM_CORE_REPORT_HH
