#include "core/harness.hh"

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "core/report.hh"
#include "obs/metrics.hh"
#include "obs/profile.hh"
#include "sim/replay.hh"
#include "sim/timeline_cache.hh"

namespace gopim::core {

ComparisonHarness::ComparisonHarness(reram::AcceleratorConfig hw,
                                     sim::SimContext simContext)
    : hw_(hw), sim_(std::move(simContext)),
      lowerCache_(std::make_shared<sim::ReplayLowerCache>()),
      timelineCache_(std::make_shared<sim::TimelineCache>())
{
    hw_.validate();
}

void
ComparisonHarness::setSimContext(sim::SimContext simContext)
{
    sim_ = std::move(simContext);
}

void
ComparisonHarness::setFaultConfig(fault::FaultConfig faultConfig)
{
    fault_ = faultConfig;
}

SystemConfig
ComparisonHarness::configureSystem(SystemKind kind) const
{
    SystemConfig system = makeSystem(kind);
    system.sim = sim_;
    system.fault = fault_;
    // The replay lower-cache outlives setSimContext on purpose: the
    // schedules it memoizes are keyed by their full (seed-zeroed)
    // descriptor, which the sim context cannot alias.
    if (memoize_ && !system.sim.lowerCache)
        system.sim.lowerCache = lowerCache_;
    // Same for the timeline memo: its key packs the event knobs and
    // the request bit for bit, and scheduleEventPath refuses to use
    // it at all when the timeline is seed-dependent.
    if (memoize_ && !system.sim.timelineCache)
        system.sim.timelineCache = timelineCache_;
    return system;
}

std::shared_ptr<const ComparisonHarness::DatasetEntry>
ComparisonHarness::datasetEntry(const std::string &name) const
{
    if (memoize_) {
        std::lock_guard<std::mutex> lock(datasetMutex_);
        const auto it = datasets_.find(name);
        if (it != datasets_.end())
            return it->second;
    }
    auto entry = std::make_shared<DatasetEntry>();
    entry->workload = gcn::Workload::paperDefault(name);
    entry->profile = gcn::VertexProfile::build(
        entry->workload.dataset, entry->workload.seed);
    if (memoize_) {
        std::lock_guard<std::mutex> lock(datasetMutex_);
        // First builder wins; a racing duplicate is identical anyway
        // (paperDefault and profile building are deterministic).
        const auto [it, inserted] = datasets_.emplace(name, entry);
        return it->second;
    }
    return entry;
}

RunResult
ComparisonHarness::runMemoized(const Accelerator &accel,
                               const gcn::Workload &workload,
                               const gcn::VertexProfile &profile) const
{
    // Two-level key: the FNV fingerprint buckets, the full canonical
    // prefix string verifies — a fingerprint collision between two
    // different configs can never alias their plans.
    const std::string key =
        planConfigPrefix(accel.system(), hw_, workload).canonical();
    const uint64_t fingerprint = fnv1a64(key);
    if (const StagePlan *plan = planCache_.find(fingerprint, key))
        return accel.executePlan(*plan, workload);
    const StagePlan *plan = planCache_.insert(
        fingerprint, key, accel.buildPlan(workload, profile));
    return accel.executePlan(*plan, workload);
}

RunResult
ComparisonHarness::runOne(SystemKind kind,
                          const gcn::Workload &workload) const
{
    Accelerator accel(hw_, configureSystem(kind));
    return accel.run(workload);
}

RunResult
ComparisonHarness::runOne(SystemKind kind,
                          const gcn::Workload &workload,
                          const gcn::VertexProfile &profile) const
{
    Accelerator accel(hw_, configureSystem(kind));
    return accel.run(workload, profile);
}

std::vector<ComparisonRow>
ComparisonHarness::runGrid(
    const std::vector<SystemKind> &systems,
    const std::vector<std::string> &datasetNames, size_t jobs) const
{
    const size_t numDatasets = datasetNames.size();
    const size_t numSystems = systems.size();

    // Workloads and vertex profiles are built once per dataset and
    // shared read-only by that dataset's cells (profile building
    // dominates setup cost for the large catalog entries). With
    // memoization on they persist across runGrid calls too.
    std::vector<std::shared_ptr<const DatasetEntry>> entries(
        numDatasets);
    parallelFor(numDatasets, jobs, [&](size_t d) {
        entries[d] = datasetEntry(datasetNames[d]);
    });

    // Every (dataset, system) cell is independent and stateless:
    // results land in their preassigned slot, so ordering — and
    // therefore every derived table — is identical for any job
    // count.
    std::vector<ComparisonRow> rows(numDatasets);
    for (size_t d = 0; d < numDatasets; ++d) {
        rows[d].datasetName = datasetNames[d];
        rows[d].results.resize(numSystems);
    }
    {
        obs::ProfileSpan span(sim_.metrics.get(), "harness.grid");
        parallelFor(numDatasets * numSystems, jobs, [&](size_t cell) {
            const size_t d = cell / numSystems;
            const size_t s = cell % numSystems;
            Accelerator accel(hw_, configureSystem(systems[s]));
            rows[d].results[s] =
                memoize_ ? runMemoized(accel, entries[d]->workload,
                                       entries[d]->profile)
                         : accel.run(entries[d]->workload,
                                     entries[d]->profile);
        });
    }
    if (sim_.metrics) {
        obs::MetricsRegistry &m = *sim_.metrics;
        m.counter("harness.grid.count").add();
        m.counter("harness.grid.cells")
            .add(static_cast<uint64_t>(numDatasets) * numSystems);
        const ThreadPool &pool = processPool();
        obs::recordPoolUtilization(m, "harness.pool",
                                   pool.threadCount(),
                                   pool.tasksSubmitted(),
                                   pool.tasksCompleted(),
                                   pool.maxQueueDepth());
    }
    return rows;
}

Table
ComparisonHarness::speedupTable(
    const std::string &title,
    const std::vector<ComparisonRow> &rows) const
{
    GOPIM_ASSERT(!rows.empty(), "empty comparison");
    std::vector<std::string> headers = {"dataset"};
    for (const auto &r : rows.front().results)
        headers.push_back(r.systemName);

    Table table(title, headers);
    for (const auto &row : rows) {
        auto &t = table.row().cell(row.datasetName);
        const RunResult &ref = row.results.front();
        for (const auto &result : row.results) {
            const double speedup = result.speedupOver(ref);
            t.cell(speedup, speedup < 100.0 ? 2 : 1);
        }
    }
    return table;
}

Table
ComparisonHarness::energyTable(
    const std::string &title,
    const std::vector<ComparisonRow> &rows) const
{
    GOPIM_ASSERT(!rows.empty(), "empty comparison");
    std::vector<std::string> headers = {"dataset"};
    for (const auto &r : rows.front().results)
        headers.push_back(r.systemName);

    Table table(title, headers);
    for (const auto &row : rows) {
        auto &t = table.row().cell(row.datasetName);
        const RunResult &ref = row.results.front();
        for (const auto &result : row.results)
            t.cell(result.energySavingOver(ref), 2);
    }
    return table;
}

} // namespace gopim::core
