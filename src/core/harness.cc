#include "core/harness.hh"

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "obs/metrics.hh"
#include "obs/profile.hh"

namespace gopim::core {

ComparisonHarness::ComparisonHarness(reram::AcceleratorConfig hw,
                                     sim::SimContext simContext)
    : hw_(hw), sim_(std::move(simContext))
{
    hw_.validate();
}

void
ComparisonHarness::setSimContext(sim::SimContext simContext)
{
    sim_ = std::move(simContext);
}

void
ComparisonHarness::setFaultConfig(fault::FaultConfig faultConfig)
{
    fault_ = faultConfig;
}

SystemConfig
ComparisonHarness::configureSystem(SystemKind kind) const
{
    SystemConfig system = makeSystem(kind);
    system.sim = sim_;
    system.fault = fault_;
    return system;
}

RunResult
ComparisonHarness::runOne(SystemKind kind,
                          const gcn::Workload &workload) const
{
    Accelerator accel(hw_, configureSystem(kind));
    return accel.run(workload);
}

RunResult
ComparisonHarness::runOne(SystemKind kind,
                          const gcn::Workload &workload,
                          const gcn::VertexProfile &profile) const
{
    Accelerator accel(hw_, configureSystem(kind));
    return accel.run(workload, profile);
}

std::vector<ComparisonRow>
ComparisonHarness::runGrid(
    const std::vector<SystemKind> &systems,
    const std::vector<std::string> &datasetNames, size_t jobs) const
{
    const size_t numDatasets = datasetNames.size();
    const size_t numSystems = systems.size();

    // Workloads and vertex profiles are built once per dataset and
    // shared read-only by that dataset's cells (profile building
    // dominates setup cost for the large catalog entries).
    std::vector<gcn::Workload> workloads;
    std::vector<gcn::VertexProfile> profiles(numDatasets);
    workloads.reserve(numDatasets);
    for (const auto &name : datasetNames)
        workloads.push_back(gcn::Workload::paperDefault(name));
    parallelFor(numDatasets, jobs, [&](size_t d) {
        profiles[d] = gcn::VertexProfile::build(workloads[d].dataset,
                                                workloads[d].seed);
    });

    // Every (dataset, system) cell is independent and stateless:
    // results land in their preassigned slot, so ordering — and
    // therefore every derived table — is identical for any job
    // count.
    std::vector<ComparisonRow> rows(numDatasets);
    for (size_t d = 0; d < numDatasets; ++d) {
        rows[d].datasetName = datasetNames[d];
        rows[d].results.resize(numSystems);
    }
    {
        obs::ProfileSpan span(sim_.metrics.get(), "harness.grid");
        parallelFor(numDatasets * numSystems, jobs, [&](size_t cell) {
            const size_t d = cell / numSystems;
            const size_t s = cell % numSystems;
            Accelerator accel(hw_, configureSystem(systems[s]));
            rows[d].results[s] = accel.run(workloads[d], profiles[d]);
        });
    }
    if (sim_.metrics) {
        obs::MetricsRegistry &m = *sim_.metrics;
        m.counter("harness.grid.count").add();
        m.counter("harness.grid.cells")
            .add(static_cast<uint64_t>(numDatasets) * numSystems);
        const ThreadPool &pool = processPool();
        obs::recordPoolUtilization(m, "harness.pool",
                                   pool.threadCount(),
                                   pool.tasksSubmitted(),
                                   pool.tasksCompleted(),
                                   pool.maxQueueDepth());
    }
    return rows;
}

Table
ComparisonHarness::speedupTable(
    const std::string &title,
    const std::vector<ComparisonRow> &rows) const
{
    GOPIM_ASSERT(!rows.empty(), "empty comparison");
    std::vector<std::string> headers = {"dataset"};
    for (const auto &r : rows.front().results)
        headers.push_back(r.systemName);

    Table table(title, headers);
    for (const auto &row : rows) {
        auto &t = table.row().cell(row.datasetName);
        const RunResult &ref = row.results.front();
        for (const auto &result : row.results) {
            const double speedup = result.speedupOver(ref);
            t.cell(speedup, speedup < 100.0 ? 2 : 1);
        }
    }
    return table;
}

Table
ComparisonHarness::energyTable(
    const std::string &title,
    const std::vector<ComparisonRow> &rows) const
{
    GOPIM_ASSERT(!rows.empty(), "empty comparison");
    std::vector<std::string> headers = {"dataset"};
    for (const auto &r : rows.front().results)
        headers.push_back(r.systemName);

    Table table(title, headers);
    for (const auto &row : rows) {
        auto &t = table.row().cell(row.datasetName);
        const RunResult &ref = row.results.front();
        for (const auto &result : row.results)
            t.cell(result.energySavingOver(ref), 2);
    }
    return table;
}

} // namespace gopim::core
