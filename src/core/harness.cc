#include "core/harness.hh"

#include "common/logging.hh"

namespace gopim::core {

ComparisonHarness::ComparisonHarness(reram::AcceleratorConfig hw)
    : hw_(hw)
{
    hw_.validate();
}

RunResult
ComparisonHarness::runOne(SystemKind kind,
                          const gcn::Workload &workload) const
{
    Accelerator accel(hw_, makeSystem(kind));
    return accel.run(workload);
}

std::vector<ComparisonRow>
ComparisonHarness::runGrid(
    const std::vector<SystemKind> &systems,
    const std::vector<std::string> &datasetNames) const
{
    std::vector<ComparisonRow> rows;
    rows.reserve(datasetNames.size());
    for (const auto &name : datasetNames) {
        const auto workload = gcn::Workload::paperDefault(name);
        const auto profile = gcn::VertexProfile::build(
            workload.dataset, workload.seed);

        ComparisonRow row;
        row.datasetName = name;
        for (SystemKind kind : systems) {
            Accelerator accel(hw_, makeSystem(kind));
            row.results.push_back(accel.run(workload, profile));
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

Table
ComparisonHarness::speedupTable(
    const std::string &title,
    const std::vector<ComparisonRow> &rows) const
{
    GOPIM_ASSERT(!rows.empty(), "empty comparison");
    std::vector<std::string> headers = {"dataset"};
    for (const auto &r : rows.front().results)
        headers.push_back(r.systemName);

    Table table(title, headers);
    for (const auto &row : rows) {
        auto &t = table.row().cell(row.datasetName);
        const RunResult &ref = row.results.front();
        for (const auto &result : row.results) {
            const double speedup = result.speedupOver(ref);
            t.cell(speedup, speedup < 100.0 ? 2 : 1);
        }
    }
    return table;
}

Table
ComparisonHarness::energyTable(
    const std::string &title,
    const std::vector<ComparisonRow> &rows) const
{
    GOPIM_ASSERT(!rows.empty(), "empty comparison");
    std::vector<std::string> headers = {"dataset"};
    for (const auto &r : rows.front().results)
        headers.push_back(r.systemName);

    Table table(title, headers);
    for (const auto &row : rows) {
        auto &t = table.row().cell(row.datasetName);
        const RunResult &ref = row.results.front();
        for (const auto &result : row.results)
            t.cell(result.energySavingOver(ref), 2);
    }
    return table;
}

} // namespace gopim::core
