#include "core/accelerator.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "fault/repair.hh"
#include "fault/wear.hh"
#include "mapping/vertex_map.hh"
#include "obs/metrics.hh"
#include "sim/engine.hh"
#include "sim/trace.hh"

namespace gopim::core {

Accelerator::Accelerator(const reram::AcceleratorConfig &hw,
                         SystemConfig system)
    : hw_(hw), system_(std::move(system)), timeModel_(hw),
      energyModel_(hw)
{
    hw_.validate();
}

RunResult
Accelerator::run(const gcn::Workload &workload) const
{
    const auto profile =
        gcn::VertexProfile::build(workload.dataset, workload.seed);
    return run(workload, profile);
}

RunResult
Accelerator::run(const gcn::Workload &workload,
                 const gcn::VertexProfile &profile) const
{
    return runWithEstimates(workload, profile, {});
}

RunResult
Accelerator::runWithEstimates(
    const gcn::Workload &workload, const gcn::VertexProfile &profile,
    const std::vector<double> &estimatedStageTimesNs) const
{
    return executePlan(
        buildPlan(workload, profile, estimatedStageTimesNs), workload);
}

StagePlan
Accelerator::buildPlan(
    const gcn::Workload &workload, const gcn::VertexProfile &profile,
    const std::vector<double> &estimatedStageTimesNs) const
{
    const auto stages =
        pipeline::buildTrainingStages(workload.model.numLayers);
    const auto artifacts = gcn::MappingArtifacts::build(
        profile, system_.policy, workload.dataset, hw_.crossbar.rows);
    const auto costs =
        timeModel_.allCosts(workload, system_.policy, artifacts);

    const uint32_t mbPerEpoch = workload.microBatchesPerEpoch();
    const uint32_t totalMicroBatches = mbPerEpoch * workload.epochs;

    // Fault/wear/repair planning. Everything below is gated on the
    // fault config so the disabled path is the exact fault-free code
    // path (the zero-fault bit-identity tests depend on that).
    const bool faultOn = system_.fault.enabled();
    fault::WearState wear;
    fault::RepairPlan plan;
    double exposure = 0.0;
    if (faultOn) {
        // Endurance wear from the schedule's actual update traffic:
        // ISU's selective updating directly reduces per-row wear.
        if (!artifacts.assignment.groupOf.empty()) {
            mapping::SelectiveUpdateParams sel;
            sel.theta = system_.policy.theta;
            sel.coldPeriod = system_.policy.coldPeriod;
            wear = fault::computeWear(
                artifacts.assignment, artifacts.important, sel,
                workload.epochs, hw_.chip.writeEndurance);
        } else {
            wear = fault::approxWear(artifacts.updateFraction,
                                     workload.epochs,
                                     hw_.chip.writeEndurance);
        }

        // Per-group fault severity + fault-aware remap: steer the
        // heavy write-load groups onto the healthiest hardware.
        const double cellRate = system_.fault.params.stuckOnRate +
                                system_.fault.params.stuckOffRate +
                                wear.wornRowFraction;
        const uint32_t numGroups =
            artifacts.assignment.numGroups > 0
                ? artifacts.assignment.numGroups
                : 64u;
        const auto scores = fault::groupFaultScores(
            numGroups, cellRate, system_.fault.params.seed);
        std::vector<double> load = wear.groupWritesPerEpoch;
        if (load.empty())
            load.assign(numGroups, 1.0);
        const auto physicalOf =
            mapping::remapGroupsByHealth(load, scores);
        std::vector<double> seenScores(numGroups);
        for (uint32_t g = 0; g < numGroups; ++g)
            seenScores[g] = scores[physicalOf[g]];
        exposure = fault::writeExposure(load, seenScores);

        fault::RepairContext repairCtx;
        repairCtx.params = system_.fault.params;
        repairCtx.spareRowFraction = system_.fault.spareRowFraction;
        repairCtx.refreshPeriodMb = system_.fault.refreshPeriodMb;
        repairCtx.rows = hw_.crossbar.rows;
        repairCtx.cols = hw_.crossbar.cols;
        repairCtx.writeLatencyNs = hw_.crossbar.writeLatencyNs;
        repairCtx.wornRowFraction = wear.wornRowFraction;
        repairCtx.writeExposure = exposure;
        repairCtx.totalMicroBatches = totalMicroBatches;
        plan = fault::repairPolicyFor(system_.fault.repair)
                   .plan(repairCtx);
    }

    // Build the allocation problem. The allocator may be driven by
    // external time estimates (predictor study); scalable/fixed parts
    // keep their modeled proportions under the estimated totals.
    alloc::AllocationProblem problem;
    problem.stages = stages;
    problem.numMicroBatches = mbPerEpoch;
    // A stage has at most a few micro-batches' worth of inputs in
    // flight; replicas beyond that cannot shorten it.
    problem.maxUsefulReplicas = workload.microBatchSize * 4;
    uint64_t mandatory = 0;
    for (const auto &cost : costs) {
        problem.scalableTimesNs.push_back(cost.scalableNs);
        problem.fixedTimesNs.push_back(cost.fixedNs);
        uint64_t xbars = cost.crossbarsPerReplica;
        if (faultOn && plan.crossbarOverheadFactor > 1.0) {
            // Spare rows / duplicate columns shrink usable capacity.
            xbars = static_cast<uint64_t>(
                std::ceil(static_cast<double>(xbars) *
                          plan.crossbarOverheadFactor));
        }
        problem.crossbarsPerReplica.push_back(xbars);
        mandatory += xbars;
    }
    if (!estimatedStageTimesNs.empty()) {
        GOPIM_ASSERT(estimatedStageTimesNs.size() == costs.size(),
                     "estimate vector size mismatch");
        for (size_t i = 0; i < costs.size(); ++i) {
            const double total = costs[i].totalNs();
            const double ratio =
                total > 0.0 ? estimatedStageTimesNs[i] / total : 1.0;
            problem.scalableTimesNs[i] *= ratio;
            problem.fixedTimesNs[i] *= ratio;
        }
    }
    const uint64_t budget = hw_.totalCrossbars();
    if (mandatory > budget) {
        fatal("workload '", workload.dataset.name,
              "' does not fit: needs ", mandatory,
              " crossbars for single replicas, chip has ", budget);
    }
    problem.spareCrossbars = budget - mandatory;

    // Allocate replicas (single replicas when no allocator is set).
    alloc::AllocationResult allocation;
    if (system_.allocator) {
        allocation = system_.allocator->allocate(problem);
    } else {
        allocation.replicas.assign(stages.size(), 1);
        allocation.totalCrossbars = mandatory;
    }

    // Final stage times always use the exact model (estimates only
    // influence the allocation decision). Replicas beyond the
    // effective-parallelism ceiling buy nothing.
    StagePlan out;
    out.stageTimesNs.resize(stages.size());
    out.serverStageTimesNs.resize(stages.size());
    out.effectiveReplicas.resize(stages.size());
    for (size_t i = 0; i < stages.size(); ++i) {
        const uint32_t effective = std::min(
            allocation.replicas[i], problem.maxUsefulReplicas);
        out.effectiveReplicas[i] = effective;
        // Write-verify retries on faulty cells stretch the
        // write-bound (fixed) part of a stage.
        const double fixedNs =
            faultOn ? costs[i].fixedNs * plan.writeAmplification
                    : costs[i].fixedNs;
        out.stageTimesNs[i] = fixedNs +
                              costs[i].scalableNs /
                                  static_cast<double>(effective);
        // Single-replica times for the replicas-as-servers event
        // mode: replica groups serve distinct micro-batches instead
        // of splitting one.
        out.serverStageTimesNs[i] = fixedNs + costs[i].scalableNs;
    }

    out.stageCrossbars.resize(stages.size());
    for (size_t i = 0; i < stages.size(); ++i)
        out.stageCrossbars[i] =
            static_cast<uint64_t>(allocation.replicas[i]) *
            costs[i].crossbarsPerReplica;

    // Accumulate energy events over all micro-batches.
    for (const auto &cost : costs) {
        out.totalActivations +=
            cost.activationsPerMb * totalMicroBatches;
        out.totalBufferBytes +=
            cost.bufferBytesPerMb * totalMicroBatches;
    }
    // Replicated regions receive every write in parallel: the wear and
    // energy multiply, the latency does not.
    for (size_t i = 0; i < stages.size(); ++i)
        out.replicatedWrites += costs[i].rowWritesPerMb *
                                totalMicroBatches *
                                allocation.replicas[i];
    if (faultOn) {
        // Verify retries / duplication amplify every write; each
        // refresh re-programs every allocated crossbar's rows.
        out.replicatedWrites = static_cast<uint64_t>(
            static_cast<double>(out.replicatedWrites) *
            plan.writeAmplification);
        if (plan.refreshEveryMicroBatches > 0) {
            const uint64_t refreshes =
                totalMicroBatches / plan.refreshEveryMicroBatches;
            out.replicatedWrites += refreshes *
                                    plan.rowWritesPerRefresh *
                                    allocation.totalCrossbars;
        }
    }

    out.stages = stages;
    out.totalMicroBatches = totalMicroBatches;
    out.faultOn = faultOn;
    out.repairPlan = plan;
    out.wearLifetimeFraction = wear.lifetimeFraction;
    out.wornRowFraction = wear.wornRowFraction;
    out.writeExposure = exposure;
    out.replicas = std::move(allocation.replicas);
    out.totalCrossbars = allocation.totalCrossbars;
    return out;
}

RunResult
Accelerator::executePlan(const StagePlan &plan,
                         const gcn::Workload &workload) const
{
    const size_t numStages = plan.stages.size();

    // Schedule the pipelining regime on the context's timing backend
    // (closed-form Eq. 3-6 or the discrete-event flow shop). The
    // context is copied per run to keep this path stateless.
    sim::SimContext ctx = system_.sim;
    ctx.recordWindows = ctx.recordWindows || ctx.traceSink != nullptr;
    if (ctx.isaRecorder)
        ctx.isaStreamLabel =
            system_.name + " on " + workload.dataset.name;

    sim::ScheduleRequest request;
    request.stageTimesNs = ctx.event.replicasAsServers
                               ? plan.serverStageTimesNs
                               : plan.stageTimesNs;
    request.replicas = plan.effectiveReplicas;
    request.totalMicroBatches = plan.totalMicroBatches;
    request.microBatchesPerBatch = system_.microBatchesPerBatch;
    switch (system_.pipelineMode) {
      case PipelineMode::Serial:
        request.regime = sim::Regime::Serial;
        break;
      case PipelineMode::IntraBatch:
        request.regime = sim::Regime::IntraBatch;
        break;
      case PipelineMode::IntraInterBatch:
        request.regime = sim::Regime::IntraInterBatch;
        break;
    }
    if (plan.faultOn && plan.repairPlan.refreshEveryMicroBatches > 0) {
        // Periodic re-program refresh steals pipeline cycles; both
        // engines execute the knobs (sim/context.hh).
        ctx.event.refreshEveryMicroBatches =
            plan.repairPlan.refreshEveryMicroBatches;
        ctx.event.refreshStallNs = plan.repairPlan.refreshStallNs;
    }

    const sim::ScheduleEngine &engine = sim::resolveEngine(ctx);
    const sim::StageTimeline schedule = engine.schedule(request, ctx);
    if (ctx.traceSink)
        ctx.traceSink->record(
            {system_.name, workload.dataset.name, engine.name()},
            plan.stages, schedule);

    // Allocation/fault observability. Everything recorded derives
    // from the (deterministic) run inputs, so exported counters are
    // identical for any harness worker count.
    if (ctx.metrics) {
        obs::MetricsRegistry &m = *ctx.metrics;
        m.counter("core.run.count").add();
        m.counter("alloc.crossbars_allocated")
            .add(plan.totalCrossbars);
        auto &replicasHist = m.histogram(
            "alloc.replicas_per_stage",
            obs::Histogram::exponentialBounds(1.0, 2.0, 12));
        for (uint32_t r : plan.replicas)
            replicasHist.observe(static_cast<double>(r));
        if (plan.faultOn) {
            m.counter("fault.run.count").add();
            m.histogram("fault.write_amplification",
                        obs::Histogram::linearBounds(1.0, 0.25, 13))
                .observe(plan.repairPlan.writeAmplification);
            if (plan.repairPlan.refreshEveryMicroBatches > 0)
                m.counter("fault.refreshes")
                    .add(plan.totalMicroBatches /
                         plan.repairPlan.refreshEveryMicroBatches);
        }
    }

    RunResult result;
    result.systemName = system_.name;
    result.datasetName = workload.dataset.name;
    result.makespanNs = schedule.makespanNs;
    result.replicas = plan.replicas;
    result.totalCrossbars = plan.totalCrossbars;
    result.stageCrossbars = plan.stageCrossbars;
    result.stageTimesNs = plan.stageTimesNs;
    result.idleFraction = schedule.idleFraction;
    result.avgIdleFraction = schedule.avgIdleFraction();
    result.engineName = engine.name();
    result.blockedNs = schedule.blockedNs;
    result.eventsProcessed = schedule.eventsProcessed;
    result.totalActivations = plan.totalActivations;
    result.totalRowWrites = plan.replicatedWrites;
    result.totalBufferBytes = plan.totalBufferBytes;
    result.stages = plan.stages;

    // Idle integral: allocated crossbars of each stage times the time
    // they spend waiting (makespan minus their busy time).
    double idleCrossbarNs = 0.0;
    for (size_t i = 0; i < numStages; ++i) {
        idleCrossbarNs += static_cast<double>(plan.stageCrossbars[i]) *
                          schedule.idleFraction[i] *
                          schedule.makespanNs;
    }
    result.energyPj = energyModel_.totalEnergyPj(
        schedule.makespanNs, plan.totalActivations,
        plan.replicatedWrites, plan.totalBufferBytes, idleCrossbarNs);

    if (plan.faultOn) {
        result.makespanNs += plan.repairPlan.remapStallNs;
        result.repairPolicy = plan.repairPlan.policy;
        result.rawFaultRate = plan.repairPlan.rawCellFaultRate;
        result.residualFaultRate =
            plan.repairPlan.residualCellFaultRate;
        result.wearLifetimeFraction = plan.wearLifetimeFraction;
        result.wornRowFraction = plan.wornRowFraction;
        result.writeAmplification =
            plan.repairPlan.writeAmplification;
        result.repairStallNs = plan.repairPlan.remapStallNs;
        result.writeExposure = plan.writeExposure;
    }
    return result;
}

} // namespace gopim::core
