/**
 * @file
 * The one flag-parsing path shared by tools and benches: every
 * binary that runs accelerator systems declares the same uniform
 * simulation flags (--engine, --seed, --jobs, --trace-out, and the
 * event-engine knobs) and turns them into a sim::SimContext the
 * same way, so flag spellings and semantics never drift between
 * entry points.
 */

#ifndef GOPIM_CORE_OPTIONS_HH
#define GOPIM_CORE_OPTIONS_HH

#include <cstddef>

#include "common/flags.hh"
#include "sim/context.hh"

namespace gopim::core {

/**
 * Declare the uniform simulation flags on `flags`:
 *   --engine=closed|event   timing backend
 *   --seed=N                simulation + profile seed
 *   --jobs=N                grid worker threads (0 = all cores)
 *   --trace-out=FILE        Chrome trace_event JSON output
 *   --buffer-slots=N        event engine: inter-stage buffer slots
 *   --retry-prob=P          event engine: write-verify retry prob
 *   --write-fraction=F      event engine: write share of stage time
 */
void addSimFlags(Flags &flags);

/**
 * Build the SimContext the parsed flags describe. When --trace-out
 * is set, a ChromeTraceSink is attached; call writeTraceIfRequested
 * after the runs to serialize it.
 */
sim::SimContext simContextFromFlags(const Flags &flags);

/** Worker-thread count from --jobs (0 = all hardware threads). */
size_t jobsFromFlags(const Flags &flags);

/**
 * Write the context's collected trace to the --trace-out path.
 * No-op when --trace-out was not given.
 */
void writeTraceIfRequested(const Flags &flags,
                           const sim::SimContext &ctx);

} // namespace gopim::core

#endif // GOPIM_CORE_OPTIONS_HH
