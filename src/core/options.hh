/**
 * @file
 * The one flag-parsing path shared by tools and benches: every
 * binary that runs accelerator systems declares the same uniform
 * simulation flags (--engine, --seed, --jobs, --trace-out, and the
 * event-engine knobs) and turns them into a sim::SimContext the
 * same way, so flag spellings and semantics never drift between
 * entry points. Range constraints are declared here once and
 * enforced by Flags::parse(), so every binary — including the
 * serving daemon, which validates JSON requests against the same
 * rules — rejects bad values identically.
 */

#ifndef GOPIM_CORE_OPTIONS_HH
#define GOPIM_CORE_OPTIONS_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/flags.hh"
#include "core/harness.hh"
#include "fault/model.hh"
#include "sim/context.hh"

namespace gopim::core {

/**
 * Declare the uniform simulation flags on `flags`:
 *   --engine=NAME           timing backend (the engine registry's
 *                           aliases: closed, event, replay, ...)
 *   --seed=N                simulation + profile seed
 *   --jobs=N                grid worker threads (0 = all cores)
 *   --trace-out=FILE        Chrome trace_event JSON output
 *   --metrics-out=FILE      metrics registry JSON export
 *   --isa-trace-out=FILE    record lowered ISA command streams here
 *   --isa-trace-in=FILE     replay a recorded ISA trace (implies
 *                           --engine=replay)
 *   --buffer-slots=N        event engine: inter-stage buffer slots
 *   --retry-prob=P          event engine: write-verify retry prob
 *   --write-fraction=F      event engine: write share of stage time
 *   --stuck-on-rate=P       fault: stuck-at-ON cell rate
 *   --stuck-off-rate=P      fault: stuck-at-OFF cell rate
 *   --drift-rate=P          fault: conductance drift per epoch
 *   --repair=NAME           fault: none|spare|ecc|refresh
 *   --spare-rows=F          fault: spare-row fraction (with spare)
 *   --refresh-period=N      fault: micro-batches between refreshes
 * Ranges (jobs >= 0, buffer-slots >= -1, retry-prob in [0, 1),
 * write-fraction in [0, 1], fault rates in [0, 1), spare-rows in
 * [0, 1), refresh-period >= 1) are attached here and enforced at
 * parse() time.
 */
void addSimFlags(Flags &flags);

/**
 * Validate the event-engine knob ranges shared by the CLI flags and
 * the serving layer's JSON requests: retryProb in [0, 1),
 * writeFraction in [0, 1]. Returns an error message, or "" when the
 * values are acceptable.
 */
std::string eventKnobRangeError(double retryProb, double writeFraction);

/**
 * Build the SimContext the parsed flags describe. When --trace-out
 * is set, a ChromeTraceSink is attached; call writeTraceIfRequested
 * after the runs to serialize it. When --metrics-out is set, a
 * MetricsRegistry is attached; call writeMetricsIfRequested after
 * the runs to export it.
 */
sim::SimContext simContextFromFlags(const Flags &flags);

/**
 * Build the fault/repair configuration the parsed fault flags
 * describe. Defaults produce a disabled FaultConfig, which keeps
 * every run bit-identical to the fault-free path.
 */
fault::FaultConfig faultConfigFromFlags(const Flags &flags);

/** Worker-thread count from --jobs (0 = all hardware threads). */
size_t jobsFromFlags(const Flags &flags);

/**
 * Write the context's collected trace to the --trace-out path.
 * No-op when --trace-out was not given.
 */
void writeTraceIfRequested(const Flags &flags,
                           const sim::SimContext &ctx);

/**
 * Write the context's metrics registry ("gopim.metrics.v1" JSON) to
 * the --metrics-out path. No-op when --metrics-out was not given.
 */
void writeMetricsIfRequested(const Flags &flags,
                             const sim::SimContext &ctx);

/**
 * Write the recorder's collected ISA command streams as a binary
 * trace to the --isa-trace-out path (isa/trace_io.hh format). No-op
 * when --isa-trace-out was not given.
 */
void writeIsaTraceIfRequested(const Flags &flags,
                              const sim::SimContext &ctx);

/**
 * Declare --json-out on a harness-driven bench: when non-empty, the
 * bench writes its result grid as machine-readable JSON (same writer
 * as the serving layer) alongside its human tables. Benches pass
 * their canonical artifact name (e.g. "BENCH_fig13.json") as the
 * default; --json-out= (empty) disables the file.
 */
void addJsonOutFlag(Flags &flags, const std::string &defaultPath = "");

/** Write `rows` to the --json-out path; no-op when empty/undeclared. */
void writeGridJsonIfRequested(const Flags &flags,
                              const std::vector<ComparisonRow> &rows);

} // namespace gopim::core

#endif // GOPIM_CORE_OPTIONS_HH
