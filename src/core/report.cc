#include "core/report.hh"

#include "common/logging.hh"
#include "sim/engine.hh"

namespace gopim::core {

std::string
jsonEscape(const std::string &s)
{
    return json::escape(s);
}

namespace {

template <typename T>
json::Value
toJsonArray(const std::vector<T> &values)
{
    json::Value arr = json::Value::array();
    for (const T &v : values)
        arr.push(json::Value(v));
    return arr;
}

} // namespace

json::Value
runResultToJson(const RunResult &run)
{
    json::Value v = json::Value::object();
    v.set("system", run.systemName);
    v.set("dataset", run.datasetName);
    v.set("engine", run.engineName);
    v.set("makespan_ns", run.makespanNs);
    v.set("energy_pj", run.energyPj);
    v.set("total_crossbars", run.totalCrossbars);
    v.set("avg_idle_fraction", run.avgIdleFraction);
    v.set("total_activations", run.totalActivations);
    v.set("total_row_writes", run.totalRowWrites);

    json::Value stages = json::Value::array();
    for (const auto &stage : run.stages)
        stages.push(stage.label());
    v.set("stages", std::move(stages));

    v.set("replicas", toJsonArray(run.replicas));
    v.set("stage_crossbars", toJsonArray(run.stageCrossbars));
    v.set("stage_times_ns", toJsonArray(run.stageTimesNs));
    v.set("idle_fraction", toJsonArray(run.idleFraction));

    // Emitted unconditionally (defaults when faults are disabled) so
    // result bytes stay stable across configurations.
    json::Value faults = json::Value::object();
    faults.set("repair_policy", run.repairPolicy);
    faults.set("raw_fault_rate", run.rawFaultRate);
    faults.set("residual_fault_rate", run.residualFaultRate);
    faults.set("wear_lifetime_fraction", run.wearLifetimeFraction);
    faults.set("worn_row_fraction", run.wornRowFraction);
    faults.set("write_amplification", run.writeAmplification);
    faults.set("repair_stall_ns", run.repairStallNs);
    faults.set("write_exposure", run.writeExposure);
    v.set("fault", std::move(faults));
    return v;
}

json::Value
gridToJson(const std::vector<ComparisonRow> &rows)
{
    json::Value arr = json::Value::array();
    for (const auto &row : rows)
        for (const auto &run : row.results)
            arr.push(runResultToJson(run));
    return arr;
}

json::Value
planConfigPrefix(const SystemConfig &system,
                 const reram::AcceleratorConfig &hw,
                 const gcn::Workload &workload)
{
    json::Value dataset = json::Value::object();
    dataset.set("name", workload.dataset.name);
    dataset.set("task", workload.dataset.task ==
                                graph::TaskType::LinkPrediction
                            ? "link"
                            : "node");
    dataset.set("vertices", workload.dataset.numVertices);
    dataset.set("edges", workload.dataset.numEdges);
    dataset.set("avg_degree", workload.dataset.avgDegree);
    dataset.set("feature_dim", workload.dataset.featureDim);

    json::Value model = json::Value::object();
    model.set("layers", workload.model.numLayers);
    model.set("input_channels", workload.model.inputChannels);
    model.set("hidden_channels", workload.model.hiddenChannels);
    model.set("output_channels", workload.model.outputChannels);

    json::Value policy = json::Value::object();
    policy.set("map_strategy",
               static_cast<int64_t>(system.policy.mapStrategy));
    policy.set("selective_update", system.policy.selectiveUpdate);
    policy.set("theta", system.policy.theta);
    policy.set("cold_period", system.policy.coldPeriod);
    policy.set("intra_batch", system.policy.intraBatchPipeline);
    policy.set("inter_batch", system.policy.interBatchPipeline);
    policy.set("hybrid_reload", system.policy.hybridReload);
    policy.set("edge_keep_fraction", system.policy.edgeKeepFraction);

    json::Value faultCfg = json::Value::object();
    faultCfg.set("stuck_on_rate", system.fault.params.stuckOnRate);
    faultCfg.set("stuck_off_rate", system.fault.params.stuckOffRate);
    faultCfg.set("drift_rate", system.fault.params.driftPerEpoch);
    faultCfg.set("fault_seed", system.fault.params.seed);
    faultCfg.set("repair", fault::toString(system.fault.repair));
    faultCfg.set("spare_rows", system.fault.spareRowFraction);
    faultCfg.set("refresh_period_mb", system.fault.refreshPeriodMb);

    json::Value hardware = json::Value::object();
    hardware.set("crossbar_rows", hw.crossbar.rows);
    hardware.set("crossbar_cols", hw.crossbar.cols);
    hardware.set("bits_per_cell", hw.crossbar.bitsPerCell);
    hardware.set("value_bits", hw.crossbar.valueBits);
    hardware.set("read_latency_ns", hw.crossbar.readLatencyNs);
    hardware.set("write_latency_ns", hw.crossbar.writeLatencyNs);
    hardware.set("crossbars_per_pe", hw.pe.crossbarsPerPe);
    hardware.set("pes_per_tile", hw.tile.pesPerTile);
    hardware.set("tiles_per_chip", hw.chip.tilesPerChip);

    json::Value config = json::Value::object();
    config.set("dataset", std::move(dataset));
    config.set("model", std::move(model));
    config.set("micro_batch", workload.microBatchSize);
    config.set("epochs", workload.epochs);
    config.set("workload_seed", workload.seed);
    config.set("system", system.name);
    config.set("pipeline_mode",
               static_cast<int64_t>(system.pipelineMode));
    config.set("allocator",
               system.allocator ? system.allocator->name() : "none");
    config.set("micro_batches_per_batch", system.microBatchesPerBatch);
    config.set("policy", std::move(policy));
    config.set("fault", std::move(faultCfg));
    config.set("hardware", std::move(hardware));
    return config;
}

json::Value
canonicalRunConfig(const SystemConfig &system,
                   const reram::AcceleratorConfig &hw,
                   const gcn::Workload &workload)
{
    json::Value config = planConfigPrefix(system, hw, workload);

    json::Value simCtx = json::Value::object();
    // The backend that will actually time the run: a plugged-in
    // override wins over the registry kind (sim::resolveEngine), so
    // the cache key must follow the same rule or two different
    // backends could share a cached result.
    simCtx.set("engine", system.sim.engineOverride
                             ? system.sim.engineOverride->name()
                             : sim::toString(system.sim.engine));
    simCtx.set("seed", system.sim.seed);
    simCtx.set("buffer_slots", system.sim.event.inputBufferSlots);
    simCtx.set("replicas_as_servers",
               system.sim.event.replicasAsServers);
    simCtx.set("retry_prob", system.sim.event.writeRetryProb);
    simCtx.set("write_fraction", system.sim.event.writeFraction);
    simCtx.set("refresh_every_mb",
               system.sim.event.refreshEveryMicroBatches);
    simCtx.set("refresh_stall_ns", system.sim.event.refreshStallNs);
    config.set("sim", std::move(simCtx));
    return config;
}

void
writeRunJson(const RunResult &run, std::ostream &os, int indent)
{
    os << runResultToJson(run).dumpIndented(indent);
}

void
writeGridJson(const std::vector<ComparisonRow> &rows, std::ostream &os)
{
    os << "[\n";
    bool first = true;
    for (const auto &row : rows) {
        for (const auto &run : row.results) {
            if (!first)
                os << ",\n";
            first = false;
            writeRunJson(run, os, 2);
        }
    }
    os << "\n]\n";
}

void
writeGridCsv(const std::vector<ComparisonRow> &rows, std::ostream &os)
{
    os << "dataset,system,makespan_ns,energy_pj,speedup_vs_first,"
          "energy_saving_vs_first,total_crossbars,avg_idle\n";
    for (const auto &row : rows) {
        GOPIM_ASSERT(!row.results.empty(), "empty comparison row");
        const RunResult &ref = row.results.front();
        for (const auto &run : row.results) {
            os << row.datasetName << ',' << run.systemName << ','
               << run.makespanNs << ',' << run.energyPj << ','
               << run.speedupOver(ref) << ','
               << run.energySavingOver(ref) << ','
               << run.totalCrossbars << ',' << run.avgIdleFraction
               << '\n';
        }
    }
}

} // namespace gopim::core
