#include "core/report.hh"

#include <iomanip>

#include "common/logging.hh"

namespace gopim::core {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char ch : s) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

namespace {

std::string
pad(int indent)
{
    return std::string(static_cast<size_t>(indent), ' ');
}

template <typename T>
void
writeArray(std::ostream &os, const std::vector<T> &values)
{
    os << '[';
    for (size_t i = 0; i < values.size(); ++i)
        os << (i ? "," : "") << values[i];
    os << ']';
}

} // namespace

void
writeRunJson(const RunResult &run, std::ostream &os, int indent)
{
    const std::string p = pad(indent);
    const std::string q = pad(indent + 2);
    os << p << "{\n";
    os << q << "\"system\": \"" << jsonEscape(run.systemName)
       << "\",\n";
    os << q << "\"dataset\": \"" << jsonEscape(run.datasetName)
       << "\",\n";
    os << q << "\"engine\": \"" << jsonEscape(run.engineName)
       << "\",\n";
    os << q << "\"makespan_ns\": " << std::setprecision(12)
       << run.makespanNs << ",\n";
    os << q << "\"energy_pj\": " << run.energyPj << ",\n";
    os << q << "\"total_crossbars\": " << run.totalCrossbars << ",\n";
    os << q << "\"avg_idle_fraction\": " << run.avgIdleFraction
       << ",\n";
    os << q << "\"total_activations\": " << run.totalActivations
       << ",\n";
    os << q << "\"total_row_writes\": " << run.totalRowWrites << ",\n";

    os << q << "\"stages\": [";
    for (size_t i = 0; i < run.stages.size(); ++i)
        os << (i ? "," : "") << '"' << run.stages[i].label() << '"';
    os << "],\n";

    os << q << "\"replicas\": ";
    writeArray(os, run.replicas);
    os << ",\n";
    os << q << "\"stage_crossbars\": ";
    writeArray(os, run.stageCrossbars);
    os << ",\n";
    os << q << "\"stage_times_ns\": ";
    writeArray(os, run.stageTimesNs);
    os << ",\n";
    os << q << "\"idle_fraction\": ";
    writeArray(os, run.idleFraction);
    os << "\n" << p << "}";
}

void
writeGridJson(const std::vector<ComparisonRow> &rows, std::ostream &os)
{
    os << "[\n";
    bool first = true;
    for (const auto &row : rows) {
        for (const auto &run : row.results) {
            if (!first)
                os << ",\n";
            first = false;
            writeRunJson(run, os, 2);
        }
    }
    os << "\n]\n";
}

void
writeGridCsv(const std::vector<ComparisonRow> &rows, std::ostream &os)
{
    os << "dataset,system,makespan_ns,energy_pj,speedup_vs_first,"
          "energy_saving_vs_first,total_crossbars,avg_idle\n";
    for (const auto &row : rows) {
        GOPIM_ASSERT(!row.results.empty(), "empty comparison row");
        const RunResult &ref = row.results.front();
        for (const auto &run : row.results) {
            os << row.datasetName << ',' << run.systemName << ','
               << run.makespanNs << ',' << run.energyPj << ','
               << run.speedupOver(ref) << ','
               << run.energySavingOver(ref) << ','
               << run.totalCrossbars << ',' << run.avgIdleFraction
               << '\n';
        }
    }
}

} // namespace gopim::core
