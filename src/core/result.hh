/**
 * @file
 * Result records produced by accelerator runs and comparisons.
 */

#ifndef GOPIM_CORE_RESULT_HH
#define GOPIM_CORE_RESULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "pipeline/schedule.hh"
#include "pipeline/stage.hh"

namespace gopim::core {

/** Outcome of one accelerator run on one workload. */
struct RunResult
{
    std::string systemName;
    std::string datasetName;

    double makespanNs = 0.0;
    double energyPj = 0.0;

    /** Replica count per stage (pipeline order). */
    std::vector<uint32_t> replicas;
    /** Crossbars per stage including replication. */
    std::vector<uint64_t> stageCrossbars;
    uint64_t totalCrossbars = 0;

    /** Per-stage single-replica and post-replication times (ns/mb). */
    std::vector<double> stageTimesNs;

    /** Idle fraction of each stage's crossbar group. */
    std::vector<double> idleFraction;
    double avgIdleFraction = 0.0;

    /** Timing backend that produced the makespan ("closed-form"...). */
    std::string engineName;
    /** Per-stage backpressure time (event-driven engine only). */
    std::vector<double> blockedNs;
    /** Discrete events executed (0 for the closed form). */
    uint64_t eventsProcessed = 0;

    /** Energy event totals. */
    uint64_t totalActivations = 0;
    uint64_t totalRowWrites = 0;
    uint64_t totalBufferBytes = 0;

    /** Stage descriptors for labeling. */
    std::vector<pipeline::Stage> stages;

    /** Fault/repair outcome (defaults = fault subsystem disabled). */
    std::string repairPolicy = "none";
    /** Cell fault rate before repair (stuck + endurance-worn). */
    double rawFaultRate = 0.0;
    /** Cell fault rate still visible after repair. */
    double residualFaultRate = 0.0;
    /** Endurance consumed by the hottest rows over the run. */
    double wearLifetimeFraction = 0.0;
    /** Fraction of rows driven past their endurance by run end. */
    double wornRowFraction = 0.0;
    /** Write-time amplification from verify retries / duplication. */
    double writeAmplification = 1.0;
    /** One-time repair reconfiguration stall added to the makespan. */
    double repairStallNs = 0.0;
    /** Fault severity the write traffic lands on after remapping. */
    double writeExposure = 0.0;

    /** Speedup of this run relative to a reference makespan. */
    double speedupOver(const RunResult &reference) const;

    /** Energy-saving factor relative to a reference run. */
    double energySavingOver(const RunResult &reference) const;
};

} // namespace gopim::core

#endif // GOPIM_CORE_RESULT_HH
