/**
 * @file
 * The top-level accelerator: composes the ReRAM substrate, the stage
 * time model, a mapping/selective-update policy, a replica allocator,
 * and a pipelining regime into a runnable system that produces time,
 * energy, and utilization results for a workload.
 */

#ifndef GOPIM_CORE_ACCELERATOR_HH
#define GOPIM_CORE_ACCELERATOR_HH

#include <memory>
#include <string>

#include <vector>

#include "alloc/allocator.hh"
#include "core/result.hh"
#include "fault/model.hh"
#include "fault/repair.hh"
#include "gcn/time_model.hh"
#include "gcn/workload.hh"
#include "pipeline/stage.hh"
#include "reram/config.hh"
#include "reram/energy.hh"
#include "sim/context.hh"

namespace gopim::core {

/** Pipelining regime of a system. */
enum class PipelineMode
{
    Serial,         ///< no overlap at all
    IntraBatch,     ///< pipeline within a batch, drain between batches
    IntraInterBatch ///< pipeline across batch boundaries too (GoPIM)
};

/** Full system description: policy + allocator + pipelining. */
struct SystemConfig
{
    std::string name;
    gcn::ExecutionPolicy policy;
    PipelineMode pipelineMode = PipelineMode::Serial;
    /** Replica allocator; null means single replicas everywhere. */
    std::shared_ptr<const alloc::Allocator> allocator;
    /** Micro-batches per batch for intra-batch-only draining. */
    uint32_t microBatchesPerBatch = 8;
    /**
     * Timing backend selection, seed, event-engine knobs, and trace
     * sink. Copied per run, so the scheduling path stays stateless
     * and grid cells can execute on a thread pool.
     */
    sim::SimContext sim;
    /**
     * Fault injection / endurance wear / repair configuration.
     * Disabled by default; when disabled the run takes the exact
     * fault-free code path (bit-identical results).
     */
    fault::FaultConfig fault;
};

/**
 * The sim-independent half of a run, fully planned: stage chain,
 * fault/wear/repair decisions, replica allocation, final stage
 * times, and the energy event counts. Everything here is a pure
 * function of (hardware, system-minus-sim, workload, profile) —
 * exactly the inputs core::planConfigPrefix canonicalizes — so a
 * plan built once can be re-executed under many sim contexts
 * (different engines/seeds) with bit-identical results to planning
 * from scratch each time. That is the contract the memoized
 * runGrid path (core::PlanCache) relies on.
 */
struct StagePlan
{
    std::vector<pipeline::Stage> stages;
    uint32_t totalMicroBatches = 0;

    /** Fault planning outcome (defaults when faults are disabled). */
    bool faultOn = false;
    fault::RepairPlan repairPlan;
    double wearLifetimeFraction = 0.0;
    double wornRowFraction = 0.0;
    double writeExposure = 0.0;

    /** Replica allocation. */
    std::vector<uint32_t> replicas;
    std::vector<uint32_t> effectiveReplicas;
    uint64_t totalCrossbars = 0;
    std::vector<uint64_t> stageCrossbars;

    /** Per-stage service times with replication folded in. */
    std::vector<double> stageTimesNs;
    /** Single-replica times for the replicas-as-servers event mode. */
    std::vector<double> serverStageTimesNs;

    /** Energy event totals over the whole run. */
    uint64_t totalActivations = 0;
    uint64_t totalBufferBytes = 0;
    uint64_t replicatedWrites = 0;
};

/** A configured accelerator ready to run workloads. */
class Accelerator
{
  public:
    Accelerator(const reram::AcceleratorConfig &hw, SystemConfig system);

    /**
     * Run a workload end to end: build the vertex profile, cost the
     * stages, allocate replicas, schedule the pipeline, and account
     * time and energy.
     */
    RunResult run(const gcn::Workload &workload) const;

    /** Run with a pre-built vertex profile (reuse across systems). */
    RunResult run(const gcn::Workload &workload,
                  const gcn::VertexProfile &profile) const;

    /**
     * Run, but let the allocator see externally estimated stage times
     * instead of the model's exact ones (the ML-vs-profiling study of
     * Table VII). The final schedule still uses exact times: a wrong
     * estimate costs performance only through worse allocation.
     */
    RunResult runWithEstimates(
        const gcn::Workload &workload,
        const gcn::VertexProfile &profile,
        const std::vector<double> &estimatedStageTimesNs) const;

    /**
     * The planning half of a run: map, cost, plan repairs, allocate
     * replicas. Depends on everything EXCEPT the sim context, so the
     * result can be cached across engine/seed changes (StagePlan).
     */
    StagePlan buildPlan(
        const gcn::Workload &workload,
        const gcn::VertexProfile &profile,
        const std::vector<double> &estimatedStageTimesNs = {}) const;

    /**
     * The scheduling half: time a prebuilt plan on this system's sim
     * context and account energy. run(w, p) is exactly
     * executePlan(buildPlan(w, p), w); callers may only pass plans
     * built by an Accelerator with the same hardware, workload, and
     * sim-independent system configuration.
     */
    RunResult executePlan(const StagePlan &plan,
                          const gcn::Workload &workload) const;

    const SystemConfig &system() const { return system_; }
    const reram::AcceleratorConfig &hardware() const { return hw_; }

  private:
    reram::AcceleratorConfig hw_;
    SystemConfig system_;
    gcn::StageTimeModel timeModel_;
    reram::EnergyModel energyModel_;
};

} // namespace gopim::core

#endif // GOPIM_CORE_ACCELERATOR_HH
