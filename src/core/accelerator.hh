/**
 * @file
 * The top-level accelerator: composes the ReRAM substrate, the stage
 * time model, a mapping/selective-update policy, a replica allocator,
 * and a pipelining regime into a runnable system that produces time,
 * energy, and utilization results for a workload.
 */

#ifndef GOPIM_CORE_ACCELERATOR_HH
#define GOPIM_CORE_ACCELERATOR_HH

#include <memory>
#include <string>

#include "alloc/allocator.hh"
#include "core/result.hh"
#include "fault/model.hh"
#include "gcn/time_model.hh"
#include "gcn/workload.hh"
#include "reram/config.hh"
#include "reram/energy.hh"
#include "sim/context.hh"

namespace gopim::core {

/** Pipelining regime of a system. */
enum class PipelineMode
{
    Serial,         ///< no overlap at all
    IntraBatch,     ///< pipeline within a batch, drain between batches
    IntraInterBatch ///< pipeline across batch boundaries too (GoPIM)
};

/** Full system description: policy + allocator + pipelining. */
struct SystemConfig
{
    std::string name;
    gcn::ExecutionPolicy policy;
    PipelineMode pipelineMode = PipelineMode::Serial;
    /** Replica allocator; null means single replicas everywhere. */
    std::shared_ptr<const alloc::Allocator> allocator;
    /** Micro-batches per batch for intra-batch-only draining. */
    uint32_t microBatchesPerBatch = 8;
    /**
     * Timing backend selection, seed, event-engine knobs, and trace
     * sink. Copied per run, so the scheduling path stays stateless
     * and grid cells can execute on a thread pool.
     */
    sim::SimContext sim;
    /**
     * Fault injection / endurance wear / repair configuration.
     * Disabled by default; when disabled the run takes the exact
     * fault-free code path (bit-identical results).
     */
    fault::FaultConfig fault;
};

/** A configured accelerator ready to run workloads. */
class Accelerator
{
  public:
    Accelerator(const reram::AcceleratorConfig &hw, SystemConfig system);

    /**
     * Run a workload end to end: build the vertex profile, cost the
     * stages, allocate replicas, schedule the pipeline, and account
     * time and energy.
     */
    RunResult run(const gcn::Workload &workload) const;

    /** Run with a pre-built vertex profile (reuse across systems). */
    RunResult run(const gcn::Workload &workload,
                  const gcn::VertexProfile &profile) const;

    /**
     * Run, but let the allocator see externally estimated stage times
     * instead of the model's exact ones (the ML-vs-profiling study of
     * Table VII). The final schedule still uses exact times: a wrong
     * estimate costs performance only through worse allocation.
     */
    RunResult runWithEstimates(
        const gcn::Workload &workload,
        const gcn::VertexProfile &profile,
        const std::vector<double> &estimatedStageTimesNs) const;

    const SystemConfig &system() const { return system_; }
    const reram::AcceleratorConfig &hardware() const { return hw_; }

  private:
    reram::AcceleratorConfig hw_;
    SystemConfig system_;
    gcn::StageTimeModel timeModel_;
    reram::EnergyModel energyModel_;
};

} // namespace gopim::core

#endif // GOPIM_CORE_ACCELERATOR_HH
