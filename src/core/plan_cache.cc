#include "core/plan_cache.hh"

#include <utility>

namespace gopim::core {

const StagePlan *
PlanCache::find(uint64_t fingerprint, const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = buckets_.find(fingerprint);
    if (it != buckets_.end()) {
        for (const Entry &entry : it->second) {
            if (entry.key == key) {
                ++hits_;
                return entry.plan.get();
            }
        }
    }
    ++misses_;
    return nullptr;
}

const StagePlan *
PlanCache::insert(uint64_t fingerprint, std::string key,
                  StagePlan plan)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Entry> &bucket = buckets_[fingerprint];
    for (const Entry &entry : bucket)
        if (entry.key == key)
            return entry.plan.get();
    bucket.push_back(Entry{
        std::move(key), std::make_unique<StagePlan>(std::move(plan))});
    return bucket.back().plan.get();
}

void
PlanCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    buckets_.clear();
    hits_ = 0;
    misses_ = 0;
}

size_t
PlanCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t n = 0;
    for (const auto &[fp, bucket] : buckets_)
        n += bucket.size();
    return n;
}

uint64_t
PlanCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

uint64_t
PlanCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

} // namespace gopim::core
