/**
 * @file
 * Thread-safe cache of sim-independent StagePlans, keyed by the
 * canonical plan-config prefix (core::planConfigPrefix). The memoized
 * runGrid path uses it so grid neighbors that differ only in their
 * sim context — engine, seed, event knobs — reuse one plan instead
 * of re-running mapping, costing, fault planning, and allocation.
 *
 * Keys are two-level: an FNV-1a fingerprint of the prefix JSON
 * buckets the entries, and the full prefix string is compared inside
 * the bucket — so a fingerprint collision between two different
 * configurations can never alias their plans (pinned by the
 * cache-poisoning test in tests/test_core.cc).
 */

#ifndef GOPIM_CORE_PLAN_CACHE_HH
#define GOPIM_CORE_PLAN_CACHE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/accelerator.hh"

namespace gopim::core {

/** Fingerprint-bucketed, full-key-verified StagePlan cache. */
class PlanCache
{
  public:
    /**
     * The cached plan for (fingerprint, key), or nullptr. Returned
     * pointers stay valid until clear() — entries are never evicted.
     */
    const StagePlan *find(uint64_t fingerprint,
                          const std::string &key) const;

    /**
     * Insert a plan and return the stored copy. If the key is
     * already present (two workers planned the same cell), the
     * existing entry wins and is returned — plans are deterministic,
     * so both copies are identical.
     */
    const StagePlan *insert(uint64_t fingerprint, std::string key,
                            StagePlan plan);

    void clear();

    size_t size() const;
    uint64_t hits() const;
    uint64_t misses() const;

  private:
    struct Entry
    {
        std::string key;
        /** unique_ptr keeps the pointee stable across bucket growth. */
        std::unique_ptr<StagePlan> plan;
    };

    mutable std::mutex mutex_;
    mutable uint64_t hits_ = 0;
    mutable uint64_t misses_ = 0;
    std::map<uint64_t, std::vector<Entry>> buckets_;
};

} // namespace gopim::core

#endif // GOPIM_CORE_PLAN_CACHE_HH
