#include "core/systems.hh"

#include "alloc/basic.hh"
#include "alloc/greedy_heap.hh"
#include "common/logging.hh"

namespace gopim::core {

std::string
toString(SystemKind kind)
{
    switch (kind) {
      case SystemKind::Serial:
        return "Serial";
      case SystemKind::SlimGnnLike:
        return "SlimGNN-like";
      case SystemKind::ReGraphX:
        return "ReGraphX";
      case SystemKind::ReFlip:
        return "ReFlip";
      case SystemKind::GoPimVanilla:
        return "GoPIM-Vanilla";
      case SystemKind::GoPim:
        return "GoPIM";
      case SystemKind::PlusPP:
        return "+PP";
      case SystemKind::PlusISU:
        return "+ISU";
      case SystemKind::Naive:
        return "Naive";
    }
    panic("unknown system kind");
}

const std::vector<SystemKind> &
allSystemKinds()
{
    static const std::vector<SystemKind> kinds = {
        SystemKind::Serial,    SystemKind::SlimGnnLike,
        SystemKind::ReGraphX,  SystemKind::ReFlip,
        SystemKind::GoPimVanilla, SystemKind::GoPim,
        SystemKind::PlusPP,    SystemKind::PlusISU,
        SystemKind::Naive};
    return kinds;
}

bool
systemFromString(const std::string &name, SystemKind *out)
{
    for (const SystemKind kind : allSystemKinds()) {
        if (toString(kind) == name) {
            *out = kind;
            return true;
        }
    }
    return false;
}

SystemKind
systemFromName(const std::string &name)
{
    SystemKind kind;
    if (!systemFromString(name, &kind))
        fatal("unknown system '", name,
              "' (try GoPIM, Serial, SlimGNN-like, ReGraphX, ReFlip, "
              "GoPIM-Vanilla)");
    return kind;
}

SystemConfig
makeSystem(SystemKind kind)
{
    SystemConfig sys;
    sys.name = toString(kind);

    using mapping::VertexMapStrategy;
    switch (kind) {
      case SystemKind::Serial:
        sys.pipelineMode = PipelineMode::Serial;
        sys.allocator = nullptr;
        break;

      case SystemKind::SlimGnnLike:
        sys.pipelineMode = PipelineMode::IntraBatch;
        sys.allocator =
            std::make_shared<alloc::SpaceProportionalAllocator>();
        sys.policy.intraBatchPipeline = true;
        // Input subgraph pruning keeps 90% of edges (weight pruning is
        // excluded from SlimGNN-like per Section VII-A).
        sys.policy.edgeKeepFraction = 0.9;
        break;

      case SystemKind::ReGraphX:
        sys.pipelineMode = PipelineMode::IntraBatch;
        sys.allocator = std::make_shared<alloc::FixedRatioAllocator>(
            1.0, 2.0);
        sys.policy.intraBatchPipeline = true;
        break;

      case SystemKind::ReFlip:
        sys.pipelineMode = PipelineMode::IntraBatch;
        sys.allocator =
            std::make_shared<alloc::CombinationOnlyAllocator>();
        sys.policy.intraBatchPipeline = true;
        sys.policy.hybridReload = true;
        break;

      case SystemKind::GoPimVanilla:
        sys.pipelineMode = PipelineMode::IntraInterBatch;
        sys.allocator = std::make_shared<alloc::GreedyHeapAllocator>();
        sys.policy.intraBatchPipeline = true;
        sys.policy.interBatchPipeline = true;
        break;

      case SystemKind::GoPim:
        sys.pipelineMode = PipelineMode::IntraInterBatch;
        sys.allocator = std::make_shared<alloc::GreedyHeapAllocator>();
        sys.policy.intraBatchPipeline = true;
        sys.policy.interBatchPipeline = true;
        sys.policy.mapStrategy = VertexMapStrategy::Interleaved;
        sys.policy.selectiveUpdate = true;
        break;

      case SystemKind::PlusPP:
        sys.pipelineMode = PipelineMode::IntraInterBatch;
        sys.allocator = nullptr;
        sys.policy.intraBatchPipeline = true;
        sys.policy.interBatchPipeline = true;
        break;

      case SystemKind::PlusISU:
        sys.pipelineMode = PipelineMode::IntraInterBatch;
        sys.allocator = nullptr;
        sys.policy.intraBatchPipeline = true;
        sys.policy.interBatchPipeline = true;
        sys.policy.mapStrategy = VertexMapStrategy::Interleaved;
        sys.policy.selectiveUpdate = true;
        break;

      case SystemKind::Naive:
        sys.pipelineMode = PipelineMode::IntraInterBatch;
        sys.allocator = nullptr;
        sys.policy.intraBatchPipeline = true;
        break;
    }
    return sys;
}

std::vector<SystemKind>
figure13Systems()
{
    return {SystemKind::Serial,       SystemKind::SlimGnnLike,
            SystemKind::ReGraphX,     SystemKind::ReFlip,
            SystemKind::GoPimVanilla, SystemKind::GoPim};
}

std::vector<SystemKind>
figure14Systems()
{
    return {SystemKind::Serial, SystemKind::PlusPP, SystemKind::PlusISU,
            SystemKind::GoPim};
}

} // namespace gopim::core
