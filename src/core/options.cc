#include "core/options.hh"

#include <limits>
#include <memory>

#include "common/logging.hh"
#include "sim/trace.hh"

namespace gopim::core {

void
addSimFlags(Flags &flags)
{
    flags.addString("engine", "closed",
                    "timing backend: closed (Eq. 3-6 recurrence) or "
                    "event (discrete-event flow shop)");
    flags.addInt("seed", 1, "simulation + profile generation seed");
    flags.addInt("jobs", 1,
                 "worker threads for grid runs (0 = all cores)");
    flags.addString("trace-out", "",
                    "write a Chrome trace_event JSON timeline here");
    flags.addInt("buffer-slots", -1,
                 "event engine: inter-stage input-buffer slots "
                 "(-1 = unbounded)");
    flags.addDouble("retry-prob", 0.0,
                    "event engine: ReRAM write-verify retry "
                    "probability");
    flags.addDouble("write-fraction", 0.3,
                    "event engine: fraction of stage time spent "
                    "writing (with --retry-prob)");
}

sim::SimContext
simContextFromFlags(const Flags &flags)
{
    sim::SimContext ctx;
    ctx.engine = sim::engineKindFromString(flags.getString("engine"));
    ctx.seed = static_cast<uint64_t>(flags.getInt("seed"));

    const int64_t slots = flags.getInt("buffer-slots");
    ctx.event.inputBufferSlots =
        slots < 0 ? std::numeric_limits<uint32_t>::max()
                  : static_cast<uint32_t>(slots);
    ctx.event.writeRetryProb = flags.getDouble("retry-prob");
    if (ctx.event.writeRetryProb < 0.0 ||
        ctx.event.writeRetryProb >= 1.0)
        fatal("--retry-prob must be in [0, 1), got ",
              ctx.event.writeRetryProb);
    ctx.event.writeFraction = flags.getDouble("write-fraction");
    if (ctx.event.writeFraction < 0.0 || ctx.event.writeFraction > 1.0)
        fatal("--write-fraction must be in [0, 1], got ",
              ctx.event.writeFraction);

    if (!flags.getString("trace-out").empty())
        ctx.traceSink = std::make_shared<sim::ChromeTraceSink>();
    return ctx;
}

size_t
jobsFromFlags(const Flags &flags)
{
    const int64_t jobs = flags.getInt("jobs");
    if (jobs < 0)
        fatal("--jobs must be >= 0 (0 = all cores), got ", jobs);
    return static_cast<size_t>(jobs);
}

void
writeTraceIfRequested(const Flags &flags, const sim::SimContext &ctx)
{
    const std::string path = flags.getString("trace-out");
    if (path.empty())
        return;
    const auto *sink =
        dynamic_cast<const sim::ChromeTraceSink *>(ctx.traceSink.get());
    GOPIM_ASSERT(sink, "trace-out set but no Chrome trace sink");
    sink->writeFile(path);
    inform("wrote ", sink->runCount(), "-run Chrome trace to ", path,
           " (open in chrome://tracing or ui.perfetto.dev)");
}

} // namespace gopim::core
