#include "core/options.hh"

#include <fstream>
#include <limits>
#include <memory>

#include "common/logging.hh"
#include "core/report.hh"
#include "isa/trace_io.hh"
#include "obs/metrics.hh"
#include "sim/replay.hh"
#include "sim/trace.hh"

namespace gopim::core {

void
addSimFlags(Flags &flags)
{
    // Derived from the engine registry so a newly registered engine
    // shows up in every binary's --help without touching this file.
    flags.addString("engine", "closed", sim::engineFlagHelp());
    flags.addInt("seed", 1, "simulation + profile generation seed");
    flags.addInt("jobs", 1,
                 "worker threads for grid runs (0 = all cores)");
    flags.setIntRange("jobs", 0, std::numeric_limits<int64_t>::max());
    flags.addString("trace-out", "",
                    "write a Chrome trace_event JSON timeline here");
    flags.addString("metrics-out", "",
                    "write collected metrics as JSON here");
    flags.addString("isa-trace-out", "",
                    "record the lowered ISA command streams as a "
                    "binary trace here");
    flags.addString("isa-trace-in", "",
                    "replay a recorded ISA trace instead of "
                    "scheduling live (implies --engine=replay)");
    flags.addInt("buffer-slots", -1,
                 "event engine: inter-stage input-buffer slots "
                 "(-1 = unbounded)");
    flags.setIntRange("buffer-slots", -1,
                      std::numeric_limits<uint32_t>::max());
    flags.addDouble("retry-prob", 0.0,
                    "event engine: ReRAM write-verify retry "
                    "probability");
    flags.setDoubleRange("retry-prob", 0.0, 1.0,
                         /*maxExclusive=*/true);
    flags.addDouble("write-fraction", 0.3,
                    "event engine: fraction of stage time spent "
                    "writing (with --retry-prob)");
    flags.setDoubleRange("write-fraction", 0.0, 1.0);
    flags.addDouble("stuck-on-rate", 0.0,
                    "fault: stuck-at-ON cell rate");
    flags.setDoubleRange("stuck-on-rate", 0.0, 1.0,
                         /*maxExclusive=*/true);
    flags.addDouble("stuck-off-rate", 0.0,
                    "fault: stuck-at-OFF cell rate");
    flags.setDoubleRange("stuck-off-rate", 0.0, 1.0,
                         /*maxExclusive=*/true);
    flags.addDouble("drift-rate", 0.0,
                    "fault: relative conductance drift per epoch");
    flags.setDoubleRange("drift-rate", 0.0, 1.0,
                         /*maxExclusive=*/true);
    flags.addString("repair", "none",
                    "fault repair policy: none, spare, ecc, refresh");
    flags.addDouble("spare-rows", 0.05,
                    "fault: fraction of rows provisioned as spares "
                    "(with --repair=spare)");
    flags.setDoubleRange("spare-rows", 0.0, 1.0,
                         /*maxExclusive=*/true);
    flags.addInt("refresh-period", 512,
                 "fault: micro-batches between re-program refreshes "
                 "(with --repair=refresh)");
    flags.setIntRange("refresh-period", 1,
                      std::numeric_limits<uint32_t>::max());
}

std::string
eventKnobRangeError(double retryProb, double writeFraction)
{
    if (retryProb < 0.0 || retryProb >= 1.0)
        return "retry probability must be in [0, 1), got " +
               std::to_string(retryProb);
    if (writeFraction < 0.0 || writeFraction > 1.0)
        return "write fraction must be in [0, 1], got " +
               std::to_string(writeFraction);
    return "";
}

sim::SimContext
simContextFromFlags(const Flags &flags)
{
    sim::SimContext ctx;
    ctx.engine = sim::engineKindFromString(flags.getString("engine"));
    ctx.seed = static_cast<uint64_t>(flags.getInt("seed"));

    const int64_t slots = flags.getInt("buffer-slots");
    ctx.event.inputBufferSlots =
        slots < 0 ? std::numeric_limits<uint32_t>::max()
                  : static_cast<uint32_t>(slots);
    ctx.event.writeRetryProb = flags.getDouble("retry-prob");
    ctx.event.writeFraction = flags.getDouble("write-fraction");
    // parse() already range-checked flag input; this guards callers
    // that build Flags values programmatically.
    const std::string rangeError = eventKnobRangeError(
        ctx.event.writeRetryProb, ctx.event.writeFraction);
    if (!rangeError.empty())
        fatal(rangeError);

    if (!flags.getString("trace-out").empty())
        ctx.traceSink = std::make_shared<sim::ChromeTraceSink>();
    if (!flags.getString("metrics-out").empty())
        ctx.metrics = std::make_shared<obs::MetricsRegistry>();
    if (!flags.getString("isa-trace-out").empty())
        ctx.isaRecorder = std::make_shared<isa::StreamRecorder>();

    const std::string traceIn = flags.getString("isa-trace-in");
    if (!traceIn.empty()) {
        if (flags.isSet("engine") &&
            ctx.engine != sim::EngineKind::Replay)
            fatal("--isa-trace-in implies --engine=replay; drop the "
                  "conflicting --engine=",
                  flags.getString("engine"));
        isa::TraceBundle bundle;
        std::string error;
        if (!isa::readTraceFile(traceIn, &bundle, &error))
            fatal("cannot load --isa-trace-in ", traceIn, ": ",
                  error);
        inform("replaying ", bundle.streams.size(),
               "-stream ISA trace from ", traceIn);
        ctx.engine = sim::EngineKind::Replay;
        ctx.engineOverride =
            std::make_shared<sim::ReplayEngine>(std::move(bundle));
    }
    return ctx;
}

fault::FaultConfig
faultConfigFromFlags(const Flags &flags)
{
    fault::FaultConfig config;
    config.params.stuckOnRate = flags.getDouble("stuck-on-rate");
    config.params.stuckOffRate = flags.getDouble("stuck-off-rate");
    config.params.driftPerEpoch = flags.getDouble("drift-rate");
    config.repair =
        fault::repairKindFromString(flags.getString("repair"));
    config.spareRowFraction = flags.getDouble("spare-rows");
    config.refreshPeriodMb =
        static_cast<uint32_t>(flags.getInt("refresh-period"));
    return config;
}

size_t
jobsFromFlags(const Flags &flags)
{
    return static_cast<size_t>(flags.getInt("jobs"));
}

void
writeTraceIfRequested(const Flags &flags, const sim::SimContext &ctx)
{
    const std::string path = flags.getString("trace-out");
    if (path.empty())
        return;
    const auto *sink =
        dynamic_cast<const sim::ChromeTraceSink *>(ctx.traceSink.get());
    GOPIM_ASSERT(sink, "trace-out set but no Chrome trace sink");
    sink->writeFile(path);
    inform("wrote ", sink->runCount(), "-run Chrome trace to ", path,
           " (open in chrome://tracing or ui.perfetto.dev)");
}

void
writeMetricsIfRequested(const Flags &flags,
                        const sim::SimContext &ctx)
{
    const std::string path = flags.getString("metrics-out");
    if (path.empty())
        return;
    GOPIM_ASSERT(ctx.metrics,
                 "metrics-out set but no registry attached");
    ctx.metrics->writeFile(path);
    inform("wrote metrics to ", path);
}

void
writeIsaTraceIfRequested(const Flags &flags,
                         const sim::SimContext &ctx)
{
    const std::string path = flags.getString("isa-trace-out");
    if (path.empty())
        return;
    GOPIM_ASSERT(ctx.isaRecorder,
                 "isa-trace-out set but no stream recorder attached");
    const isa::TraceBundle bundle = ctx.isaRecorder->bundle();
    std::string error;
    if (!isa::writeTraceFile(path, bundle, &error))
        fatal("cannot write --isa-trace-out: ", error);
    inform("wrote ", bundle.streams.size(),
           "-stream ISA trace to ", path,
           " (inspect with gopim_trace)");
}

void
addJsonOutFlag(Flags &flags, const std::string &defaultPath)
{
    flags.addString("json-out", defaultPath,
                    "write the result grid as JSON to this file "
                    "(empty = disabled)");
}

void
writeGridJsonIfRequested(const Flags &flags,
                         const std::vector<ComparisonRow> &rows)
{
    const std::string path = flags.getString("json-out");
    if (path.empty())
        return;
    std::ofstream out(path);
    if (!out)
        fatal("cannot open --json-out file ", path);
    out << gridToJson(rows).dumpIndented() << '\n';
    inform("wrote ", rows.size(), "-row result grid to ", path);
}

} // namespace gopim::core
