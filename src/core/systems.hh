/**
 * @file
 * Factory for the named accelerator systems compared in Section VII:
 * Serial, SlimGNN-like, ReGraphX, ReFlip, GoPIM-Vanilla, GoPIM, and
 * the ablation variants +PP and +ISU (Fig. 14) and Naive (Fig. 15).
 */

#ifndef GOPIM_CORE_SYSTEMS_HH
#define GOPIM_CORE_SYSTEMS_HH

#include <string>
#include <vector>

#include "core/accelerator.hh"

namespace gopim::core {

/** All system identifiers in paper order. */
enum class SystemKind
{
    Serial,       ///< sequential execution, no pipeline, no replicas
    SlimGnnLike,  ///< intra-batch pipeline + space-proportional replicas
                  ///< + input subgraph pruning, index mapping
    ReGraphX,     ///< intra-batch pipeline + fixed 1:2 replicas
    ReFlip,       ///< replicas only for Combination + hybrid reloads
    GoPimVanilla, ///< GoPIM without ISU (ML allocation + full pipeline)
    GoPim,        ///< full GoPIM (ML allocation + ISU)
    PlusPP,       ///< ablation: Serial + intra/inter-batch pipelining
    PlusISU,      ///< ablation: +PP with ISU enabled
    Naive,        ///< pipelined, index mapping, no replicas (Fig. 15)
};

/** Display name matching the paper's figures. */
std::string toString(SystemKind kind);

/** All system kinds in paper order (Fig. 13 + ablations). */
const std::vector<SystemKind> &allSystemKinds();

/**
 * Parse a display name back to its kind. Returns false on unknown
 * names — the serving layer turns that into a request error instead
 * of exiting.
 */
bool systemFromString(const std::string &name, SystemKind *out);

/** Parse a display name or fatal() — the CLI entry-point form. */
SystemKind systemFromName(const std::string &name);

/** Build the SystemConfig for a named system. */
SystemConfig makeSystem(SystemKind kind);

/** The five Fig. 13 comparison systems plus GoPIM, in paper order. */
std::vector<SystemKind> figure13Systems();

/** The Fig. 14 ablation ladder: Serial, +PP, +ISU, GoPIM. */
std::vector<SystemKind> figure14Systems();

} // namespace gopim::core

#endif // GOPIM_CORE_SYSTEMS_HH
