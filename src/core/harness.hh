/**
 * @file
 * Comparison harness: runs named systems over datasets and produces
 * the normalized speedup/energy tables the paper's evaluation reports.
 */

#ifndef GOPIM_CORE_HARNESS_HH
#define GOPIM_CORE_HARNESS_HH

#include <map>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/result.hh"
#include "core/systems.hh"
#include "gcn/workload.hh"
#include "reram/config.hh"

namespace gopim::core {

/** Results of one dataset across several systems. */
struct ComparisonRow
{
    std::string datasetName;
    std::vector<RunResult> results; ///< same order as the system list
};

/** Runs system x dataset grids and formats results. */
class ComparisonHarness
{
  public:
    explicit ComparisonHarness(
        reram::AcceleratorConfig hw =
            reram::AcceleratorConfig::paperDefault());

    /** Run one system on one workload. */
    RunResult runOne(SystemKind kind, const gcn::Workload &workload) const;

    /**
     * Run all `systems` on each dataset's paper-default workload.
     * The vertex profile is built once per dataset and shared.
     */
    std::vector<ComparisonRow> runGrid(
        const std::vector<SystemKind> &systems,
        const std::vector<std::string> &datasetNames) const;

    /** Speedup table normalized to the first system in each row. */
    Table speedupTable(const std::string &title,
                       const std::vector<ComparisonRow> &rows) const;

    /** Energy-saving table normalized to the first system. */
    Table energyTable(const std::string &title,
                      const std::vector<ComparisonRow> &rows) const;

    const reram::AcceleratorConfig &hardware() const { return hw_; }

  private:
    reram::AcceleratorConfig hw_;
};

} // namespace gopim::core

#endif // GOPIM_CORE_HARNESS_HH
