/**
 * @file
 * Comparison harness: runs named systems over datasets and produces
 * the normalized speedup/energy tables the paper's evaluation reports.
 */

#ifndef GOPIM_CORE_HARNESS_HH
#define GOPIM_CORE_HARNESS_HH

#include <map>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/result.hh"
#include "core/systems.hh"
#include "fault/model.hh"
#include "gcn/workload.hh"
#include "reram/config.hh"
#include "sim/context.hh"

namespace gopim::core {

/** Results of one dataset across several systems. */
struct ComparisonRow
{
    std::string datasetName;
    std::vector<RunResult> results; ///< same order as the system list
};

/** Runs system x dataset grids and formats results. */
class ComparisonHarness
{
  public:
    explicit ComparisonHarness(
        reram::AcceleratorConfig hw =
            reram::AcceleratorConfig::paperDefault(),
        sim::SimContext simContext = {});

    /** Timing backend + knobs applied to every system run here. */
    void setSimContext(sim::SimContext simContext);
    const sim::SimContext &simContext() const { return sim_; }

    /** Fault/repair configuration applied to every system run here. */
    void setFaultConfig(fault::FaultConfig faultConfig);
    const fault::FaultConfig &faultConfig() const { return fault_; }

    /** Run one system on one workload. */
    RunResult runOne(SystemKind kind, const gcn::Workload &workload) const;

    /** Run one system with a pre-built profile (reuse across runs). */
    RunResult runOne(SystemKind kind, const gcn::Workload &workload,
                     const gcn::VertexProfile &profile) const;

    /**
     * Run all `systems` on each dataset's paper-default workload.
     * The vertex profile is built once per dataset and shared.
     *
     * `jobs` spreads the (dataset x system) cells over a thread
     * pool: 1 runs serially on the caller's thread, 0 uses all
     * hardware threads. Every cell is stateless and deterministic,
     * so the result tables are bit-identical for any job count.
     */
    std::vector<ComparisonRow> runGrid(
        const std::vector<SystemKind> &systems,
        const std::vector<std::string> &datasetNames,
        size_t jobs = 1) const;

    /** Speedup table normalized to the first system in each row. */
    Table speedupTable(const std::string &title,
                       const std::vector<ComparisonRow> &rows) const;

    /** Energy-saving table normalized to the first system. */
    Table energyTable(const std::string &title,
                      const std::vector<ComparisonRow> &rows) const;

    const reram::AcceleratorConfig &hardware() const { return hw_; }

  private:
    /** makeSystem(kind) with this harness's sim context applied. */
    SystemConfig configureSystem(SystemKind kind) const;

    reram::AcceleratorConfig hw_;
    sim::SimContext sim_;
    fault::FaultConfig fault_;
};

} // namespace gopim::core

#endif // GOPIM_CORE_HARNESS_HH
