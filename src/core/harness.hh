/**
 * @file
 * Comparison harness: runs named systems over datasets and produces
 * the normalized speedup/energy tables the paper's evaluation reports.
 */

#ifndef GOPIM_CORE_HARNESS_HH
#define GOPIM_CORE_HARNESS_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/plan_cache.hh"
#include "core/result.hh"
#include "core/systems.hh"
#include "fault/model.hh"
#include "gcn/workload.hh"
#include "reram/config.hh"
#include "sim/context.hh"

namespace gopim::sim {
class ReplayLowerCache;
class TimelineCache;
} // namespace gopim::sim

namespace gopim::core {

/** Results of one dataset across several systems. */
struct ComparisonRow
{
    std::string datasetName;
    std::vector<RunResult> results; ///< same order as the system list
};

/** Runs system x dataset grids and formats results. */
class ComparisonHarness
{
  public:
    explicit ComparisonHarness(
        reram::AcceleratorConfig hw =
            reram::AcceleratorConfig::paperDefault(),
        sim::SimContext simContext = {});

    /** Timing backend + knobs applied to every system run here. */
    void setSimContext(sim::SimContext simContext);
    const sim::SimContext &simContext() const { return sim_; }

    /** Fault/repair configuration applied to every system run here. */
    void setFaultConfig(fault::FaultConfig faultConfig);
    const fault::FaultConfig &faultConfig() const { return fault_; }

    /**
     * Memoized re-simulation across runGrid calls (on by default).
     * Grid cells that share a sim-independent config prefix
     * (core::planConfigPrefix) reuse one StagePlan, dataset
     * workloads/profiles are built once per dataset name, and the
     * replay engine's self-replay mode skips re-lowering schedules
     * it has seen; the event path memoizes whole timelines when the
     * schedule is provably seed-independent (sim/timeline_cache.hh).
     * setSimContext deliberately preserves all these caches: the sim
     * context is exactly what the cache keys exclude (or pack
     * explicitly, for the timeline memo's event knobs), so sweeping
     * engines/seeds over one harness hits.
     * Results are bit-identical with memoization on or off (pinned
     * by tests/test_core.cc); turn it off to benchmark the uncached
     * path. setFaultConfig changes the plan key, so stale hits are
     * impossible — but the dataset cache it cannot affect at all.
     */
    void setMemoize(bool on) { memoize_ = on; }
    bool memoize() const { return memoize_; }

    /** Plan-cache statistics (hits/misses/size) for tests/benches. */
    const PlanCache &planCache() const { return planCache_; }

    /** Run one system on one workload. */
    RunResult runOne(SystemKind kind, const gcn::Workload &workload) const;

    /** Run one system with a pre-built profile (reuse across runs). */
    RunResult runOne(SystemKind kind, const gcn::Workload &workload,
                     const gcn::VertexProfile &profile) const;

    /**
     * Run all `systems` on each dataset's paper-default workload.
     * The vertex profile is built once per dataset and shared.
     *
     * `jobs` spreads the (dataset x system) cells over a thread
     * pool: 1 runs serially on the caller's thread, 0 uses all
     * hardware threads. Every cell is stateless and deterministic,
     * so the result tables are bit-identical for any job count.
     */
    std::vector<ComparisonRow> runGrid(
        const std::vector<SystemKind> &systems,
        const std::vector<std::string> &datasetNames,
        size_t jobs = 1) const;

    /** Speedup table normalized to the first system in each row. */
    Table speedupTable(const std::string &title,
                       const std::vector<ComparisonRow> &rows) const;

    /** Energy-saving table normalized to the first system. */
    Table energyTable(const std::string &title,
                      const std::vector<ComparisonRow> &rows) const;

    const reram::AcceleratorConfig &hardware() const { return hw_; }

  private:
    /** makeSystem(kind) with this harness's sim context applied. */
    SystemConfig configureSystem(SystemKind kind) const;

    /** One dataset's shared inputs, built once per dataset name. */
    struct DatasetEntry
    {
        gcn::Workload workload;
        gcn::VertexProfile profile;
    };

    /**
     * The paper-default workload + vertex profile for `name`, via
     * the dataset cache when memoization is on. Safe to key by name
     * because runGrid only ever runs paper-default workloads, which
     * are a pure function of the name.
     */
    std::shared_ptr<const DatasetEntry>
    datasetEntry(const std::string &name) const;

    /** One grid cell through the plan cache (memoize_ is on). */
    RunResult runMemoized(const Accelerator &accel,
                          const gcn::Workload &workload,
                          const gcn::VertexProfile &profile) const;

    reram::AcceleratorConfig hw_;
    sim::SimContext sim_;
    fault::FaultConfig fault_;
    bool memoize_ = true;
    mutable PlanCache planCache_;
    std::shared_ptr<sim::ReplayLowerCache> lowerCache_;
    std::shared_ptr<sim::TimelineCache> timelineCache_;
    mutable std::mutex datasetMutex_;
    mutable std::map<std::string, std::shared_ptr<const DatasetEntry>>
        datasets_;
};

} // namespace gopim::core

#endif // GOPIM_CORE_HARNESS_HH
