#include "core/result.hh"

#include "common/logging.hh"

namespace gopim::core {

double
RunResult::speedupOver(const RunResult &reference) const
{
    GOPIM_ASSERT(makespanNs > 0.0, "speedup of zero-time run");
    return reference.makespanNs / makespanNs;
}

double
RunResult::energySavingOver(const RunResult &reference) const
{
    GOPIM_ASSERT(energyPj > 0.0, "energy saving of zero-energy run");
    return reference.energyPj / energyPj;
}

} // namespace gopim::core
