#include "gcn/workload.hh"

#include <algorithm>
#include <functional>

#include "common/logging.hh"
#include "common/math_utils.hh"

namespace gopim::gcn {

uint32_t
Workload::microBatchesPerEpoch() const
{
    GOPIM_ASSERT(microBatchSize > 0, "micro-batch size must be > 0");
    return static_cast<uint32_t>(
        ceilDiv(dataset.numVertices, microBatchSize));
}

Workload
Workload::paperDefault(const std::string &datasetName)
{
    Workload w;
    w.dataset = graph::DatasetCatalog::byName(datasetName);
    w.model = paperModelFor(datasetName);
    w.microBatchSize = 64; // paper default (Section VII-A)
    w.epochs = 1;
    return w;
}

double
ExecutionPolicy::resolvedTheta(const graph::DatasetSpec &dataset) const
{
    if (!selectiveUpdate)
        return 1.0;
    if (theta > 0.0)
        return theta;
    return mapping::adaptiveTheta(dataset.avgDegree);
}

VertexProfile
VertexProfile::build(const graph::DatasetSpec &dataset, uint64_t seed)
{
    Rng rng(seed);
    VertexProfile profile;
    profile.degrees =
        graph::DatasetCatalog::degreeSequence(dataset, 1.0, rng);

    // Real OGB vertex ids correlate strongly with degree (insertion
    // order, community structure), which is what produces Fig. 6's
    // per-crossbar skew under index mapping and defeats OSU (Fig. 7).
    // Reproduce that: globally degree-sorted ids with local shuffling.
    std::sort(profile.degrees.begin(), profile.degrees.end(),
              std::greater<>());
    const size_t window = 256;
    for (size_t begin = 0; begin < profile.degrees.size();
         begin += window) {
        const size_t end =
            std::min(begin + window, profile.degrees.size());
        for (size_t i = end - begin; i > 1; --i) {
            const size_t j = rng.uniformInt(static_cast<uint64_t>(i));
            std::swap(profile.degrees[begin + i - 1],
                      profile.degrees[begin + j]);
        }
    }
    return profile;
}

} // namespace gopim::gcn
