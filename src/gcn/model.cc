#include "gcn/model.hh"

#include "common/logging.hh"

namespace gopim::gcn {

std::pair<uint32_t, uint32_t>
GcnModelConfig::layerDims(uint32_t layer) const
{
    GOPIM_ASSERT(layer >= 1 && layer <= numLayers,
                 "layer index out of range");
    const uint32_t in = layer == 1 ? inputChannels : hiddenChannels;
    const uint32_t out =
        layer == numLayers ? outputChannels : hiddenChannels;
    return {in, out};
}

GcnModelConfig
paperModelFor(const std::string &datasetName)
{
    // Table IV, verbatim.
    if (datasetName == "ddi")
        return {"ddi", 2, 0.005, 0.5, 256, 256, 256};
    if (datasetName == "collab")
        return {"collab", 3, 0.001, 0.0, 128, 256, 256};
    if (datasetName == "ppa")
        return {"ppa", 3, 0.01, 0.0, 58, 256, 256};
    if (datasetName == "proteins")
        return {"proteins", 3, 0.01, 0.0, 8, 256, 112};
    if (datasetName == "arxiv")
        return {"arxiv", 3, 0.01, 0.5, 128, 256, 40};
    if (datasetName == "products")
        return {"products", 3, 0.01, 0.5, 100, 256, 47};
    if (datasetName == "Cora")
        return {"Cora", 3, 0.005, 0.5, 256, 256, 256};
    fatal("no paper model for dataset '", datasetName, "'");
}

} // namespace gopim::gcn
