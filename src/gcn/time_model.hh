/**
 * @file
 * Analytic per-stage cost model for GCN training on the ReRAM
 * substrate. For each of the 4L stages it produces the scalable
 * (replica-divisible) compute time, the fixed (write-bound) time,
 * the crossbar footprint of one replica, and the energy event counts.
 * Calibration notes live in DESIGN.md §2.
 */

#ifndef GOPIM_GCN_TIME_MODEL_HH
#define GOPIM_GCN_TIME_MODEL_HH

#include <cstdint>
#include <vector>

#include "gcn/workload.hh"
#include "mapping/selective.hh"
#include "mapping/vertex_map.hh"
#include "noc/router.hh"
#include "pipeline/stage.hh"
#include "reram/config.hh"
#include "reram/latency.hh"

namespace gopim::gcn {

/** Per-stage, per-micro-batch cost breakdown. */
struct StageCost
{
    /** Compute time divisible by the replica count (ns). */
    double scalableNs = 0.0;
    /** Write/update time, identical in every replica (ns). */
    double fixedNs = 0.0;
    /** Crossbars one replica of this stage occupies. */
    uint64_t crossbarsPerReplica = 0;
    /** Crossbar read events (for dynamic energy). */
    uint64_t activationsPerMb = 0;
    /** Crossbar row-write events (for dynamic energy + endurance). */
    uint64_t rowWritesPerMb = 0;
    /** Bytes moved through buffers (for buffer energy). */
    uint64_t bufferBytesPerMb = 0;

    /** Single-replica stage time (ns/micro-batch). */
    double totalNs() const { return scalableNs + fixedNs; }
};

/** Calibration constants of the cost model. */
struct TimeModelParams
{
    /** Weight-manager SRAM throughput for GC (MACs per ns). */
    double sramMacsPerNs = 1024.0;
    /** Fraction of vertices ReFlip executes column-major (reloaded). */
    double reflipLowDegreeShare = 1.0;
    /**
     * Model the inter-tile partial-sum reduction over the NoC
     * (Section IV-A's adders + pipeline bus). Off by default: a
     * second-order effect (~5%) kept opt-in so the headline
     * calibration stays comparable; bench/ablation_noc quantifies it.
     */
    bool modelNoc = false;
    noc::NocParams nocParams{};
};

/**
 * Mapping-dependent artifacts shared by all Aggregation stages of a
 * workload: the vertex assignment, the importance selection, and the
 * per-epoch update bound.
 */
struct MappingArtifacts
{
    mapping::VertexAssignment assignment;
    std::vector<bool> important;
    /** Max per-group expected row writes per epoch (update bound). */
    double epochUpdateSlots = 0.0;
    /** Expected fraction of vertices written per epoch. */
    double updateFraction = 1.0;

    static MappingArtifacts build(const VertexProfile &profile,
                                  const ExecutionPolicy &policy,
                                  const graph::DatasetSpec &dataset,
                                  uint32_t rowsPerGroup);

    /**
     * Cheap analytic artifacts for the full-update (no selective
     * updating) case, where the mapping strategy does not change the
     * update bound: every group writes all its rows once per epoch.
     * Avoids materializing the degree sequence.
     */
    static MappingArtifacts fullUpdateApprox(uint64_t numVertices,
                                             uint32_t rowsPerGroup);
};

/** The analytic stage cost model. */
class StageTimeModel
{
  public:
    StageTimeModel(const reram::AcceleratorConfig &cfg,
                   TimeModelParams params = {});

    /** Cost of one stage of the workload under the policy. */
    StageCost cost(const Workload &workload,
                   const ExecutionPolicy &policy,
                   const MappingArtifacts &artifacts,
                   const pipeline::Stage &stage) const;

    /** Costs for all 4L stages, in pipeline order. */
    std::vector<StageCost> allCosts(const Workload &workload,
                                    const ExecutionPolicy &policy,
                                    const MappingArtifacts &artifacts)
        const;

    const reram::AcceleratorConfig &config() const
    {
        return latency_.config();
    }

  private:
    StageCost combinationCost(const Workload &w, uint32_t layer) const;
    StageCost aggregationCost(const Workload &w,
                              const ExecutionPolicy &policy,
                              const MappingArtifacts &artifacts,
                              uint32_t layer) const;
    StageCost lossCost(const Workload &w, uint32_t layer) const;
    StageCost gradientCost(const Workload &w,
                           const MappingArtifacts &artifacts,
                           uint32_t layer) const;

    /** Per-input inter-tile reduction latency for a replica (ns). */
    double nocReductionNs(uint64_t crossbarsPerReplica,
                          uint32_t outputWidth) const;

    reram::LatencyModel latency_;
    TimeModelParams params_;
};

} // namespace gopim::gcn

#endif // GOPIM_GCN_TIME_MODEL_HH
