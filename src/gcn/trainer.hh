/**
 * @file
 * Functional (numerically real) GCN trainer for the accuracy
 * experiments (Table V, Fig. 16a/b).
 *
 * Trains a two-layer GCN with softmax cross-entropy on a labeled
 * graph and emulates selective vertex updating the way the hardware
 * experiences it: combined features of non-important vertices are NOT
 * rewritten onto the crossbars every epoch, so Aggregation reads stale
 * rows until the next cold refresh. OSU vs ISU differ only in timing,
 * not in which values go stale, so accuracy here depends on the
 * selection policy (theta, cold period) alone — as in the paper.
 */

#ifndef GOPIM_GCN_TRAINER_HH
#define GOPIM_GCN_TRAINER_HH

#include <cstdint>
#include <vector>

#include "fault/model.hh"
#include "graph/generators.hh"
#include "tensor/arena.hh"
#include "tensor/matrix.hh"

namespace gopim::gcn {

/** Training hyperparameters for the functional trainer. */
struct TrainerConfig
{
    uint32_t epochs = 120;
    double learningRate = 0.01;
    double weightDecay = 5e-4;
    /** Inverted dropout on hidden layers (Table IV uses 0-0.5). */
    double dropout = 0.0;
    /**
     * ReRAM programming noise: each epoch's forward pass sees the
     * weights as the crossbars hold them, with multiplicative
     * conductance variation of this sigma (0 = ideal devices).
     */
    double weightNoiseSigma = 0.0;
    /** GCN depth; Table IV uses 2 (ddi) or 3 (all others). */
    uint32_t numLayers = 2;
    uint32_t hiddenChannels = 64;
    uint32_t featureDim = 32;
    /** Fraction of vertices used for training (rest is test). */
    double trainFraction = 0.6;
    uint64_t seed = 3;
    /**
     * Device fault injection: stuck cells corrupt the programmed
     * weight image every epoch, drift decays it between refreshes,
     * and the configured repair policy mitigates per its
     * fault::AccuracyEffects. Disabled by default; disabled runs are
     * bit-identical to the pre-fault trainer.
     */
    fault::FaultConfig fault;
};

/** Selective-update emulation policy. */
struct SelectivePolicy
{
    bool enabled = false;
    double theta = 0.5;
    uint32_t coldPeriod = 20;
};

/** Result of one training run. */
struct TrainResult
{
    double finalTestAccuracy = 0.0;
    double bestTestAccuracy = 0.0;
    double finalTrainLoss = 0.0;
    std::vector<double> lossHistory;
};

/**
 * Reusable workspace for FunctionalTrainer::train. Every matrix a
 * training run touches per epoch lives here and is reshaped in place
 * (tensor::Matrix::assignShape), so a caller sweeping many runs —
 * the table05/fig16 ablations — pays the layer-buffer allocations
 * once instead of per epoch. Contents are overwritten by each run;
 * results are bit-identical with or without reuse.
 */
struct TrainScratch
{
    std::vector<tensor::Matrix> weights;
    std::vector<tensor::Matrix> mAdam;
    std::vector<tensor::Matrix> vAdam;
    std::vector<tensor::Matrix> weightGrads;
    std::vector<tensor::Matrix> programmed;
    std::vector<tensor::Matrix> preacts;
    std::vector<tensor::Matrix> hidden;
    std::vector<tensor::Matrix> aggregated;
    std::vector<tensor::Matrix> dropMasks;
    std::vector<tensor::Matrix> staleH;
    tensor::Matrix logits;
    tensor::Matrix grad;
    tensor::Matrix gradTmp;
    tensor::Matrix upstream;
};

/**
 * N-layer GCN trainer over a labeled graph with symmetric-normalized
 * aggregation (D^-1/2 (A + I) D^-1/2). Layer l computes
 * H_l = ReLU(A_hat H_{l-1} W_l) with the final layer linear into the
 * class logits, matching the paper's Combination-Aggregation loop.
 */
class FunctionalTrainer
{
  public:
    /** Build trainer state (features, masks, normalization). */
    FunctionalTrainer(const graph::LabeledGraph &data,
                      TrainerConfig config);

    /** Train from fresh weights under the given selective policy. */
    TrainResult train(const SelectivePolicy &policy) const;

    /**
     * Same, reusing `scratch` across calls: repeated runs (ablation
     * sweeps) skip the per-run/per-epoch buffer allocations.
     */
    TrainResult train(const SelectivePolicy &policy,
                      TrainScratch &scratch) const;

    /** Normalized aggregation A_hat * H (exposed for testing). */
    tensor::Matrix aggregate(const tensor::Matrix &h) const;

    /** Aggregation into a reusable buffer (out must not alias h). */
    void aggregateInto(const tensor::Matrix &h,
                       tensor::Matrix &out) const;

    const std::vector<uint32_t> &trainVertices() const
    {
        return trainMask_;
    }
    const std::vector<uint32_t> &testVertices() const
    {
        return testMask_;
    }

  private:
    const graph::LabeledGraph &data_;
    TrainerConfig config_;
    tensor::Matrix features_;
    std::vector<float> normCoeff_; ///< 1/sqrt(deg+1) per vertex
    std::vector<uint32_t> trainMask_;
    std::vector<uint32_t> testMask_;
    std::vector<bool> important_; ///< top-theta by degree (filled lazily)

    /**
     * SoA adjacency slab in one aligned arena: CSR offsets, neighbor
     * ids, and the prenormalized edge weights n_v * n_u — so the
     * aggregation inner loop streams two flat arrays instead of
     * recomputing a weight per edge per epoch per layer.
     */
    tensor::Arena adjacency_;
    const uint64_t *adjOffsets_ = nullptr;  ///< size V+1
    const uint32_t *adjNeighbors_ = nullptr; ///< size nnz
    const float *edgeWeights_ = nullptr;     ///< size nnz
    const float *selfWeights_ = nullptr;     ///< n_v^2, size V

    /** aggregate(features_), static across runs of this trainer. */
    tensor::Matrix aggX_;
};

} // namespace gopim::gcn

#endif // GOPIM_GCN_TRAINER_HH
