#include "gcn/time_model.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/math_utils.hh"
#include "mapping/tiling.hh"

namespace gopim::gcn {

MappingArtifacts
MappingArtifacts::build(const VertexProfile &profile,
                        const ExecutionPolicy &policy,
                        const graph::DatasetSpec &dataset,
                        uint32_t rowsPerGroup)
{
    MappingArtifacts out;
    out.assignment = mapping::mapVertices(profile.degrees, rowsPerGroup,
                                          policy.mapStrategy);

    const double theta = policy.resolvedTheta(dataset);
    out.important = mapping::selectImportant(profile.degrees, theta);

    mapping::SelectiveUpdateParams params;
    params.theta = theta;
    params.coldPeriod = policy.coldPeriod;
    out.epochUpdateSlots = mapping::epochUpdateSlots(
        out.assignment, out.important, params);
    out.updateFraction =
        theta + (1.0 - theta) / static_cast<double>(policy.coldPeriod);
    return out;
}

MappingArtifacts
MappingArtifacts::fullUpdateApprox(uint64_t numVertices,
                                   uint32_t rowsPerGroup)
{
    GOPIM_ASSERT(numVertices > 0 && rowsPerGroup > 0,
                 "fullUpdateApprox: empty problem");
    MappingArtifacts out;
    out.assignment.rowsPerGroup = rowsPerGroup;
    out.assignment.numGroups =
        static_cast<uint32_t>(ceilDiv(numVertices, rowsPerGroup));
    out.epochUpdateSlots = static_cast<double>(
        std::min<uint64_t>(numVertices, rowsPerGroup));
    out.updateFraction = 1.0;
    return out;
}

StageTimeModel::StageTimeModel(const reram::AcceleratorConfig &cfg,
                               TimeModelParams params)
    : latency_(cfg), params_(params)
{
}

double
StageTimeModel::nocReductionNs(uint64_t crossbarsPerReplica,
                               uint32_t outputWidth) const
{
    if (!params_.modelNoc)
        return 0.0;
    const auto &cfg = latency_.config();
    const uint64_t crossbarsPerTile =
        static_cast<uint64_t>(cfg.pe.crossbarsPerPe) *
        cfg.tile.pesPerTile;
    const uint64_t tiles =
        ceilDiv(crossbarsPerReplica, crossbarsPerTile);
    if (tiles <= 1)
        return 0.0;
    const noc::NocModel model(noc::MeshTopology::forTileCount(tiles),
                              params_.nocParams);
    const uint64_t bytes = static_cast<uint64_t>(outputWidth) *
                           (cfg.crossbar.valueBits / 8);
    return model.reductionLatencyNs(tiles, bytes);
}

StageCost
StageTimeModel::combinationCost(const Workload &w, uint32_t layer) const
{
    const auto [fin, fout] = w.model.layerDims(layer);
    const auto &cfg = latency_.config();

    StageCost cost;
    cost.crossbarsPerReplica =
        mapping::crossbarsPerReplica(fin, fout, cfg);
    // Each micro-batch vertex streams through the weight matrix once.
    cost.scalableNs =
        latency_.mvmStreamLatencyNs(w.microBatchSize, fin, 1) +
        static_cast<double>(w.microBatchSize) *
            nocReductionNs(cost.crossbarsPerReplica, fout);
    // One activation = one input vector's full bit-serial pass through
    // one crossbar (Table II powers cover the whole pass).
    cost.activationsPerMb = static_cast<uint64_t>(w.microBatchSize) *
                            cost.crossbarsPerReplica;
    cost.bufferBytesPerMb = static_cast<uint64_t>(w.microBatchSize) *
                            fin * (cfg.crossbar.valueBits / 8);
    return cost;
}

StageCost
StageTimeModel::aggregationCost(const Workload &w,
                                const ExecutionPolicy &policy,
                                const MappingArtifacts &artifacts,
                                uint32_t layer) const
{
    const auto [fin, fout] = w.model.layerDims(layer);
    (void)fin;
    const auto &cfg = latency_.config();
    const uint64_t v = w.dataset.numVertices;
    const uint32_t mbPerEpoch = w.microBatchesPerEpoch();

    StageCost cost;
    cost.crossbarsPerReplica = mapping::crossbarsPerReplica(v, fout, cfg);

    // Adjacency rows are dense-streamed through the feature map in
    // serial row windows; SlimGNN-like edge pruning skips the windows
    // whose edges were removed.
    cost.scalableNs =
        latency_.mvmStreamLatencyNs(w.microBatchSize, v, 1) *
        policy.edgeKeepFraction;

    // Inter-tile partial-sum reduction per input (opt-in).
    cost.scalableNs += static_cast<double>(w.microBatchSize) *
                       nocReductionNs(cost.crossbarsPerReplica, fout);

    // ReFlip's hybrid execution processes low-degree vertices
    // column-major, activating only the row windows that contain
    // neighbors: a sparse graph touches far fewer windows per input
    // (this is ReFlip's strength on sparse graphs, Section VII-B).
    if (policy.hybridReload) {
        const double windows = static_cast<double>(
            ceilDiv(v, cfg.windowRows()));
        const double activated = expectedDistinctBuckets(
            w.dataset.avgDegree, windows);
        cost.scalableNs *= activated / windows;
    }

    // Vertex updating: the per-epoch write bound of the most-loaded
    // row group, amortized over the epoch's micro-batches. Replicas
    // do not reduce this (each replica receives the same writes).
    cost.fixedNs = artifacts.epochUpdateSlots *
                   latency_.rowWriteLatencyNs() /
                   static_cast<double>(mbPerEpoch);

    const auto fp = mapping::tileMatrix(v, fout, cfg);
    const double updatedVerticesPerMb =
        static_cast<double>(v) * artifacts.updateFraction /
        static_cast<double>(mbPerEpoch);
    cost.rowWritesPerMb = static_cast<uint64_t>(
        updatedVerticesPerMb * static_cast<double>(fp.colSegments));

    // ReFlip hybrid execution repeatedly reloads the source vertices
    // of column-major (low-degree) vertices: edge-proportional extra
    // writes, spread over the row groups but streamed through the
    // shared column-major input path, so every segment of a reloaded
    // row serializes (unlike the row-major update broadcast above).
    if (policy.hybridReload) {
        const double reloads =
            2.0 * static_cast<double>(w.dataset.numEdges) *
            params_.reflipLowDegreeShare;
        const double perGroup =
            reloads /
            static_cast<double>(artifacts.assignment.numGroups);
        cost.fixedNs += perGroup * latency_.rowWriteLatencyNs() /
                        static_cast<double>(mbPerEpoch);
        cost.rowWritesPerMb += static_cast<uint64_t>(
            reloads * static_cast<double>(fp.colSegments) /
            static_cast<double>(mbPerEpoch));
    }

    cost.activationsPerMb = static_cast<uint64_t>(
        static_cast<double>(w.microBatchSize) *
        static_cast<double>(cost.crossbarsPerReplica) *
        policy.edgeKeepFraction);
    cost.bufferBytesPerMb = static_cast<uint64_t>(w.microBatchSize) *
                            v / 8; // bit-packed adjacency rows
    return cost;
}

StageCost
StageTimeModel::lossCost(const Workload &w, uint32_t layer) const
{
    const auto [fin, fout] = w.model.layerDims(layer);
    const auto &cfg = latency_.config();

    // LC propagates errors through the transposed weights; dataflow
    // matches CO (paper Section IV-B).
    StageCost cost;
    cost.crossbarsPerReplica =
        mapping::crossbarsPerReplica(fout, fin, cfg);
    cost.scalableNs =
        latency_.mvmStreamLatencyNs(w.microBatchSize, fout, 1) +
        static_cast<double>(w.microBatchSize) *
            nocReductionNs(cost.crossbarsPerReplica, fin);
    cost.activationsPerMb = static_cast<uint64_t>(w.microBatchSize) *
                            cost.crossbarsPerReplica;
    cost.bufferBytesPerMb = static_cast<uint64_t>(w.microBatchSize) *
                            fout * (cfg.crossbar.valueBits / 8);
    return cost;
}

StageCost
StageTimeModel::gradientCost(const Workload &w,
                             const MappingArtifacts &artifacts,
                             uint32_t layer) const
{
    (void)artifacts;
    const auto [fin, fout] = w.model.layerDims(layer);
    const auto &cfg = latency_.config();
    const uint64_t v = w.dataset.numVertices;
    const uint32_t mbPerEpoch = w.microBatchesPerEpoch();

    // GC computes weight gradients in the SRAM weight manager and
    // rewrites the affected crossbar regions (weights + features), so
    // its crossbar footprint matches the feature map (Table VI).
    StageCost cost;
    cost.crossbarsPerReplica = mapping::crossbarsPerReplica(v, fout, cfg);

    const double macs = static_cast<double>(w.microBatchSize) * fin *
                        fout;
    cost.scalableNs = macs / params_.sramMacsPerNs;

    // Weight rewrite once per batch, amortized per micro-batch. The
    // weight rows spread over ceil(F_in / 64) row groups; writes are
    // serial within a group, parallel across groups.
    const double weightRowsPerGroup = static_cast<double>(
        std::min<uint64_t>(fin, cfg.crossbar.rows));
    cost.fixedNs = weightRowsPerGroup * latency_.rowWriteLatencyNs() /
                   static_cast<double>(mbPerEpoch);
    cost.rowWritesPerMb = ceilDiv(
        static_cast<uint64_t>(fin) * fout * cfg.crossbar.slicesPerValue(),
        cfg.crossbar.cols) /
        std::max<uint32_t>(mbPerEpoch, 1);
    cost.bufferBytesPerMb = static_cast<uint64_t>(w.microBatchSize) *
                            (fin + fout) *
                            (cfg.crossbar.valueBits / 8);
    return cost;
}

StageCost
StageTimeModel::cost(const Workload &workload,
                     const ExecutionPolicy &policy,
                     const MappingArtifacts &artifacts,
                     const pipeline::Stage &stage) const
{
    switch (stage.type) {
      case pipeline::StageType::Combination:
        return combinationCost(workload, stage.layer);
      case pipeline::StageType::Aggregation:
        return aggregationCost(workload, policy, artifacts, stage.layer);
      case pipeline::StageType::LossCompute:
        return lossCost(workload, stage.layer);
      case pipeline::StageType::GradientCompute:
        return gradientCost(workload, artifacts, stage.layer);
    }
    panic("unknown stage type");
}

std::vector<StageCost>
StageTimeModel::allCosts(const Workload &workload,
                         const ExecutionPolicy &policy,
                         const MappingArtifacts &artifacts) const
{
    const auto stages =
        pipeline::buildTrainingStages(workload.model.numLayers);
    std::vector<StageCost> costs;
    costs.reserve(stages.size());
    for (const auto &stage : stages)
        costs.push_back(cost(workload, policy, artifacts, stage));
    return costs;
}

} // namespace gopim::gcn
