#include "gcn/trainer.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"
#include "fault/repair.hh"
#include "mapping/selective.hh"
#include "tensor/init.hh"
#include "tensor/ops.hh"

namespace gopim::gcn {

FunctionalTrainer::FunctionalTrainer(const graph::LabeledGraph &data,
                                     TrainerConfig config)
    : data_(data), config_(config)
{
    const auto &g = data_.graph;
    GOPIM_ASSERT(g.numVertices() > 0, "trainer needs a non-empty graph");
    GOPIM_ASSERT(data_.labels.size() == g.numVertices(),
                 "label count mismatch");

    Rng rng(config_.seed);

    // Features: noisy class-mean signal so the GCN has something to
    // learn, matching the planted-partition substitution in DESIGN.md.
    const uint32_t dim = config_.featureDim;
    tensor::Matrix classMeans = tensor::uniformInit(
        static_cast<size_t>(data_.numClasses), dim, -1.0f, 1.0f, rng);
    features_ = tensor::Matrix(g.numVertices(), dim);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        const auto label = static_cast<size_t>(data_.labels[v]);
        for (uint32_t c = 0; c < dim; ++c)
            features_(v, c) =
                classMeans(label, c) +
                static_cast<float>(rng.normal(0.0, 1.0));
    }

    // Symmetric normalization coefficients with self loops.
    normCoeff_.resize(g.numVertices());
    for (graph::VertexId v = 0; v < g.numVertices(); ++v)
        normCoeff_[v] = 1.0f / std::sqrt(
                                   static_cast<float>(g.degree(v)) + 1.0f);

    // Random train/test split.
    std::vector<uint32_t> order(g.numVertices());
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    const auto trainCount = static_cast<size_t>(
        static_cast<double>(order.size()) * config_.trainFraction);
    trainMask_.assign(order.begin(),
                      order.begin() + static_cast<long>(trainCount));
    testMask_.assign(order.begin() + static_cast<long>(trainCount),
                     order.end());
    GOPIM_ASSERT(!trainMask_.empty() && !testMask_.empty(),
                 "degenerate train/test split");

    // SoA adjacency: one arena slab holding offsets, neighbor ids,
    // and the prenormalized edge weights n_v * n_u. The weights are
    // the exact per-edge products the original per-call loop
    // computed, frozen once, so aggregation results are bit-equal.
    const size_t nv = g.numVertices();
    uint64_t nnz = 0;
    for (graph::VertexId v = 0; v < nv; ++v)
        nnz += g.degree(v);
    auto *offsets = adjacency_.allocate<uint64_t>(nv + 1);
    auto *neighbors = adjacency_.allocate<uint32_t>(nnz);
    auto *weights = adjacency_.allocate<float>(nnz);
    auto *self = adjacency_.allocate<float>(nv);
    uint64_t slot = 0;
    for (graph::VertexId v = 0; v < nv; ++v) {
        offsets[v] = slot;
        const float nvCoeff = normCoeff_[v];
        self[v] = nvCoeff * nvCoeff;
        for (graph::VertexId u : g.neighbors(v)) {
            neighbors[slot] = u;
            weights[slot] = nvCoeff * normCoeff_[u];
            ++slot;
        }
    }
    offsets[nv] = slot;
    adjOffsets_ = offsets;
    adjNeighbors_ = neighbors;
    edgeWeights_ = weights;
    selfWeights_ = self;

    // Layer-1 input is static: aggregate the features once per
    // trainer instead of once per train() call.
    aggregateInto(features_, aggX_);
}

void
FunctionalTrainer::aggregateInto(const tensor::Matrix &h,
                                 tensor::Matrix &out) const
{
    const auto &g = data_.graph;
    GOPIM_ASSERT(h.rows() == g.numVertices(),
                 "aggregate: row count mismatch");
    const size_t cols = h.cols();
    // Accumulate over a zeroed buffer (never assign directly): the
    // original summed from 0.0f, and 0.0f + x normalizes -0.0f in a
    // way a plain store would not — keep the bits identical.
    out.assignShape(h.rows(), cols, 0.0f);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        float *dst = out.rowPtr(v);
        // Self loop.
        {
            const float w = selfWeights_[v];
            const float *src = h.rowPtr(v);
            for (size_t c = 0; c < cols; ++c)
                dst[c] += w * src[c];
        }
        const uint64_t end = adjOffsets_[v + 1];
        for (uint64_t e = adjOffsets_[v]; e < end; ++e) {
            const float w = edgeWeights_[e];
            const float *src = h.rowPtr(adjNeighbors_[e]);
            for (size_t c = 0; c < cols; ++c)
                dst[c] += w * src[c];
        }
    }
}

tensor::Matrix
FunctionalTrainer::aggregate(const tensor::Matrix &h) const
{
    tensor::Matrix out;
    aggregateInto(h, out);
    return out;
}

TrainResult
FunctionalTrainer::train(const SelectivePolicy &policy) const
{
    TrainScratch scratch;
    return train(policy, scratch);
}

TrainResult
FunctionalTrainer::train(const SelectivePolicy &policy,
                         TrainScratch &scratch) const
{
    const auto &g = data_.graph;
    const size_t numClasses = static_cast<size_t>(data_.numClasses);
    const uint32_t layers = std::max(config_.numLayers, 1u);
    const uint32_t hiddenLayers = layers - 1;
    Rng rng(config_.seed + 101);

    // Layer dims: featureDim -> hidden^(L-1) -> numClasses.
    scratch.weights.resize(layers);
    for (uint32_t l = 0; l < layers; ++l) {
        const size_t in =
            l == 0 ? config_.featureDim : config_.hiddenChannels;
        const size_t out =
            l + 1 == layers ? numClasses : config_.hiddenChannels;
        scratch.weights[l] = tensor::xavierUniform(in, out, rng);
    }
    auto &weights = scratch.weights;

    // Importance selection mirrors the hardware policy.
    std::vector<bool> important(g.numVertices(), true);
    if (policy.enabled)
        important =
            mapping::selectImportant(g.degrees(), policy.theta);

    // Fault injection: per-layer stuck-cell maps, mitigated by the
    // configured repair policy's residual-accuracy effects. Entirely
    // skipped when no fault mechanism is configured, so the default
    // path is bit-identical to the fault-free trainer.
    const bool faultsOn = config_.fault.params.any();
    fault::AccuracyEffects faultFx;
    std::vector<fault::CellFaultMap> faultMaps;
    if (faultsOn) {
        faultFx = fault::accuracyEffectsFor(config_.fault);
        if (faultFx.stuckOnRate > 0.0 || faultFx.stuckOffRate > 0.0) {
            fault::FaultParams cellParams;
            cellParams.stuckOnRate = faultFx.stuckOnRate;
            cellParams.stuckOffRate = faultFx.stuckOffRate;
            for (uint32_t l = 0; l < layers; ++l) {
                const uint64_t mapSeed =
                    config_.fault.params.seed + l * 7919;
                fault::CellFaultMap map(weights[l].rows(),
                                        weights[l].cols(), cellParams,
                                        mapSeed);
                if (faultFx.eccDuplicate) {
                    // Duplicate-and-compare: only coincident faults
                    // in both copies survive.
                    map = map.maskedWith(fault::CellFaultMap(
                        weights[l].rows(), weights[l].cols(),
                        cellParams, mapSeed + 1));
                }
                if (faultFx.spareRowFraction > 0.0)
                    map.repairRows(faultFx.spareRowFraction);
                faultMaps.push_back(std::move(map));
            }
        }
    }

    // Stale crossbar image of each hidden layer's combined features.
    scratch.staleH.resize(hiddenLayers);
    for (auto &stale : scratch.staleH)
        stale.assignShape(g.numVertices(), config_.hiddenChannels,
                          0.0f);
    bool staleValid = false;

    // Per-epoch buffers (reused across epochs and across runs).
    scratch.preacts.resize(hiddenLayers);
    scratch.hidden.resize(hiddenLayers);
    scratch.aggregated.resize(hiddenLayers);
    scratch.dropMasks.resize(hiddenLayers);
    scratch.weightGrads.resize(layers);

    // Adam state, one pair per weight matrix.
    scratch.mAdam.resize(layers);
    scratch.vAdam.resize(layers);
    for (uint32_t l = 0; l < layers; ++l) {
        scratch.mAdam[l].assignShape(weights[l].rows(),
                                     weights[l].cols(), 0.0f);
        scratch.vAdam[l].assignShape(weights[l].rows(),
                                     weights[l].cols(), 0.0f);
    }
    const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;

    const bool imageNeeded =
        config_.weightNoiseSigma > 0.0 || faultsOn;
    if (imageNeeded)
        scratch.programmed.resize(layers);

    // The aggregated input feeding each layer: aggX_ for layer 0,
    // then this epoch's aggregated hidden output for the rest. The
    // original copied aggX into a per-run vector; pointing at the
    // shared buffers carries identical values without the copies.
    std::vector<const tensor::Matrix *> layerInputs(layers);
    layerInputs[0] = &aggX_;

    TrainResult result;
    for (uint32_t epoch = 0; epoch < config_.epochs; ++epoch) {
        const bool coldRefresh =
            !policy.enabled || !staleValid ||
            (epoch % policy.coldPeriod == 0);

        // The crossbars hold a corrupted image of the weights (noise,
        // retention drift since the last refresh, stuck cells); both
        // the forward pass and (approximately) the backward pass see
        // it.
        if (imageNeeded) {
            const uint32_t sinceRefresh =
                faultFx.refreshPeriodEpochs > 0
                    ? epoch % faultFx.refreshPeriodEpochs
                    : epoch;
            const float driftDecay =
                faultFx.driftPerEpoch > 0.0
                    ? static_cast<float>(
                          std::pow(1.0 - faultFx.driftPerEpoch,
                                   static_cast<double>(sinceRefresh)))
                    : 1.0f;
            for (size_t l = 0; l < weights.size(); ++l) {
                tensor::Matrix &noisy = scratch.programmed[l];
                noisy = weights[l];
                float *p = noisy.data();
                if (config_.weightNoiseSigma > 0.0) {
                    for (size_t i = 0; i < noisy.size(); ++i)
                        p[i] *= static_cast<float>(
                            1.0 +
                            rng.normal(0.0,
                                       config_.weightNoiseSigma));
                }
                if (driftDecay != 1.0f) {
                    for (size_t i = 0; i < noisy.size(); ++i)
                        p[i] *= driftDecay;
                }
                if (l < faultMaps.size())
                    faultMaps[l].apply(noisy);
            }
        }
        const auto &activeWeights =
            imageNeeded ? scratch.programmed : weights;

        // Forward pass: per layer, combine (matmul) then aggregate.
        for (uint32_t l = 0; l < layers; ++l) {
            if (l + 1 == layers) {
                tensor::matmulInto(*layerInputs[l], activeWeights[l],
                                   scratch.logits);
                break;
            }
            tensor::matmulInto(*layerInputs[l], activeWeights[l],
                               scratch.preacts[l]);
            tensor::Matrix &h = scratch.hidden[l];
            tensor::reluInto(scratch.preacts[l], h);

            // Selective updating: non-important vertices keep the
            // stale crossbar image between cold refreshes, at every
            // hidden layer (each layer's feature map is a separate
            // crossbar region).
            if (policy.enabled) {
                auto &stale = scratch.staleH[l];
                if (coldRefresh) {
                    stale = h;
                } else {
                    for (graph::VertexId v = 0; v < g.numVertices();
                         ++v) {
                        if (!important[v]) {
                            std::copy(stale.rowPtr(v),
                                      stale.rowPtr(v) + h.cols(),
                                      h.rowPtr(v));
                        } else {
                            std::copy(h.rowPtr(v),
                                      h.rowPtr(v) + h.cols(),
                                      stale.rowPtr(v));
                        }
                    }
                }
            }

            // Inverted dropout (training path); the mask also gates
            // the backward pass.
            if (config_.dropout > 0.0) {
                const float keep =
                    1.0f - static_cast<float>(config_.dropout);
                scratch.dropMasks[l].assignShape(h.rows(), h.cols(),
                                                 0.0f);
                float *mp = scratch.dropMasks[l].data();
                float *hp = h.data();
                for (size_t i = 0; i < h.size(); ++i) {
                    mp[i] =
                        rng.bernoulli(keep) ? 1.0f / keep : 0.0f;
                    hp[i] *= mp[i];
                }
            }
            aggregateInto(h, scratch.aggregated[l]);
            layerInputs[l + 1] = &scratch.aggregated[l];
        }
        if (policy.enabled && coldRefresh)
            staleValid = true;

        const float loss = tensor::softmaxCrossEntropy(
            scratch.logits, data_.labels, trainMask_, &scratch.grad);
        result.lossHistory.push_back(loss);
        result.finalTrainLoss = loss;

        // Backward pass: mirror the forward loop.
        for (uint32_t li = layers; li > 0; --li) {
            const uint32_t l = li - 1;
            tensor::matmulTransAInto(*layerInputs[l], scratch.grad,
                                     scratch.weightGrads[l]);
            if (l == 0)
                break;
            // Upstream through the aggregation (A_hat symmetric),
            // the dropout mask, and the ReLU of layer l-1; the
            // backward MVMs run on the same programmed crossbars.
            tensor::matmulTransBInto(scratch.grad, activeWeights[l],
                                     scratch.gradTmp);
            aggregateInto(scratch.gradTmp, scratch.upstream);
            if (config_.dropout > 0.0) {
                float *dp = scratch.upstream.data();
                const float *mp = scratch.dropMasks[l - 1].data();
                for (size_t i = 0; i < scratch.upstream.size(); ++i)
                    dp[i] *= mp[i];
            }
            tensor::reluBackwardInto(scratch.upstream,
                                     scratch.preacts[l - 1],
                                     scratch.grad);
        }

        // Adam step with decoupled weight decay.
        const double corr1 =
            1.0 - std::pow(beta1, static_cast<double>(epoch) + 1.0);
        const double corr2 =
            1.0 - std::pow(beta2, static_cast<double>(epoch) + 1.0);
        for (uint32_t l = 0; l < layers; ++l) {
            float *wp = weights[l].data();
            const float *gp = scratch.weightGrads[l].data();
            float *mp = scratch.mAdam[l].data();
            float *vp = scratch.vAdam[l].data();
            for (size_t i = 0; i < weights[l].size(); ++i) {
                const double gradW =
                    gp[i] + config_.weightDecay *
                                static_cast<double>(wp[i]);
                mp[i] = static_cast<float>(beta1 * mp[i] +
                                           (1.0 - beta1) * gradW);
                vp[i] = static_cast<float>(
                    beta2 * vp[i] + (1.0 - beta2) * gradW * gradW);
                wp[i] -= static_cast<float>(
                    config_.learningRate * (mp[i] / corr1) /
                    (std::sqrt(vp[i] / corr2) + eps));
            }
        }

        const double acc =
            tensor::accuracy(scratch.logits, data_.labels, testMask_);
        result.finalTestAccuracy = acc;
        result.bestTestAccuracy =
            std::max(result.bestTestAccuracy, acc);
    }
    return result;
}

} // namespace gopim::gcn
