#include "gcn/trainer.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"
#include "fault/repair.hh"
#include "mapping/selective.hh"
#include "tensor/init.hh"
#include "tensor/ops.hh"

namespace gopim::gcn {

FunctionalTrainer::FunctionalTrainer(const graph::LabeledGraph &data,
                                     TrainerConfig config)
    : data_(data), config_(config)
{
    const auto &g = data_.graph;
    GOPIM_ASSERT(g.numVertices() > 0, "trainer needs a non-empty graph");
    GOPIM_ASSERT(data_.labels.size() == g.numVertices(),
                 "label count mismatch");

    Rng rng(config_.seed);

    // Features: noisy class-mean signal so the GCN has something to
    // learn, matching the planted-partition substitution in DESIGN.md.
    const uint32_t dim = config_.featureDim;
    tensor::Matrix classMeans = tensor::uniformInit(
        static_cast<size_t>(data_.numClasses), dim, -1.0f, 1.0f, rng);
    features_ = tensor::Matrix(g.numVertices(), dim);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        const auto label = static_cast<size_t>(data_.labels[v]);
        for (uint32_t c = 0; c < dim; ++c)
            features_(v, c) =
                classMeans(label, c) +
                static_cast<float>(rng.normal(0.0, 1.0));
    }

    // Symmetric normalization coefficients with self loops.
    normCoeff_.resize(g.numVertices());
    for (graph::VertexId v = 0; v < g.numVertices(); ++v)
        normCoeff_[v] = 1.0f / std::sqrt(
                                   static_cast<float>(g.degree(v)) + 1.0f);

    // Random train/test split.
    std::vector<uint32_t> order(g.numVertices());
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    const auto trainCount = static_cast<size_t>(
        static_cast<double>(order.size()) * config_.trainFraction);
    trainMask_.assign(order.begin(),
                      order.begin() + static_cast<long>(trainCount));
    testMask_.assign(order.begin() + static_cast<long>(trainCount),
                     order.end());
    GOPIM_ASSERT(!trainMask_.empty() && !testMask_.empty(),
                 "degenerate train/test split");
}

tensor::Matrix
FunctionalTrainer::aggregate(const tensor::Matrix &h) const
{
    const auto &g = data_.graph;
    GOPIM_ASSERT(h.rows() == g.numVertices(),
                 "aggregate: row count mismatch");
    tensor::Matrix out(h.rows(), h.cols(), 0.0f);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        float *dst = out.rowPtr(v);
        const float nv = normCoeff_[v];
        // Self loop.
        {
            const float w = nv * nv;
            const float *src = h.rowPtr(v);
            for (size_t c = 0; c < h.cols(); ++c)
                dst[c] += w * src[c];
        }
        for (graph::VertexId u : g.neighbors(v)) {
            const float w = nv * normCoeff_[u];
            const float *src = h.rowPtr(u);
            for (size_t c = 0; c < h.cols(); ++c)
                dst[c] += w * src[c];
        }
    }
    return out;
}

TrainResult
FunctionalTrainer::train(const SelectivePolicy &policy) const
{
    const auto &g = data_.graph;
    const size_t numClasses = static_cast<size_t>(data_.numClasses);
    const uint32_t layers = std::max(config_.numLayers, 1u);
    Rng rng(config_.seed + 101);

    // Layer dims: featureDim -> hidden^(L-1) -> numClasses.
    std::vector<tensor::Matrix> weights;
    for (uint32_t l = 0; l < layers; ++l) {
        const size_t in =
            l == 0 ? config_.featureDim : config_.hiddenChannels;
        const size_t out =
            l + 1 == layers ? numClasses : config_.hiddenChannels;
        weights.push_back(tensor::xavierUniform(in, out, rng));
    }

    // Importance selection mirrors the hardware policy.
    std::vector<bool> important(g.numVertices(), true);
    if (policy.enabled)
        important =
            mapping::selectImportant(g.degrees(), policy.theta);

    // Fault injection: per-layer stuck-cell maps, mitigated by the
    // configured repair policy's residual-accuracy effects. Entirely
    // skipped when no fault mechanism is configured, so the default
    // path is bit-identical to the fault-free trainer.
    const bool faultsOn = config_.fault.params.any();
    fault::AccuracyEffects faultFx;
    std::vector<fault::CellFaultMap> faultMaps;
    if (faultsOn) {
        faultFx = fault::accuracyEffectsFor(config_.fault);
        if (faultFx.stuckOnRate > 0.0 || faultFx.stuckOffRate > 0.0) {
            fault::FaultParams cellParams;
            cellParams.stuckOnRate = faultFx.stuckOnRate;
            cellParams.stuckOffRate = faultFx.stuckOffRate;
            for (uint32_t l = 0; l < layers; ++l) {
                const uint64_t mapSeed =
                    config_.fault.params.seed + l * 7919;
                fault::CellFaultMap map(weights[l].rows(),
                                        weights[l].cols(), cellParams,
                                        mapSeed);
                if (faultFx.eccDuplicate) {
                    // Duplicate-and-compare: only coincident faults
                    // in both copies survive.
                    map = map.maskedWith(fault::CellFaultMap(
                        weights[l].rows(), weights[l].cols(),
                        cellParams, mapSeed + 1));
                }
                if (faultFx.spareRowFraction > 0.0)
                    map.repairRows(faultFx.spareRowFraction);
                faultMaps.push_back(std::move(map));
            }
        }
    }

    // Stale crossbar image of each hidden layer's combined features.
    std::vector<tensor::Matrix> staleH(
        layers > 1 ? layers - 1 : 0,
        tensor::Matrix(g.numVertices(), config_.hiddenChannels, 0.0f));
    bool staleValid = false;

    // Pre-aggregate the input features once (layer-1 input is static).
    const tensor::Matrix aggX = aggregate(features_);

    // Adam state, one pair per weight matrix.
    std::vector<tensor::Matrix> mAdam, vAdam;
    for (const auto &w : weights) {
        mAdam.emplace_back(w.rows(), w.cols(), 0.0f);
        vAdam.emplace_back(w.rows(), w.cols(), 0.0f);
    }
    const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;

    TrainResult result;
    for (uint32_t epoch = 0; epoch < config_.epochs; ++epoch) {
        const bool coldRefresh =
            !policy.enabled || !staleValid ||
            (epoch % policy.coldPeriod == 0);

        // The crossbars hold a corrupted image of the weights (noise,
        // retention drift since the last refresh, stuck cells); both
        // the forward pass and (approximately) the backward pass see
        // it.
        const bool imageNeeded =
            config_.weightNoiseSigma > 0.0 || faultsOn;
        std::vector<tensor::Matrix> programmed;
        if (imageNeeded) {
            const uint32_t sinceRefresh =
                faultFx.refreshPeriodEpochs > 0
                    ? epoch % faultFx.refreshPeriodEpochs
                    : epoch;
            const float driftDecay =
                faultFx.driftPerEpoch > 0.0
                    ? static_cast<float>(
                          std::pow(1.0 - faultFx.driftPerEpoch,
                                   static_cast<double>(sinceRefresh)))
                    : 1.0f;
            for (size_t l = 0; l < weights.size(); ++l) {
                tensor::Matrix noisy = weights[l];
                float *p = noisy.data();
                if (config_.weightNoiseSigma > 0.0) {
                    for (size_t i = 0; i < noisy.size(); ++i)
                        p[i] *= static_cast<float>(
                            1.0 +
                            rng.normal(0.0,
                                       config_.weightNoiseSigma));
                }
                if (driftDecay != 1.0f) {
                    for (size_t i = 0; i < noisy.size(); ++i)
                        p[i] *= driftDecay;
                }
                if (l < faultMaps.size())
                    faultMaps[l].apply(noisy);
                programmed.push_back(std::move(noisy));
            }
        }
        const auto &activeWeights = imageNeeded ? programmed : weights;

        // Forward pass: per layer, combine (matmul) then aggregate.
        // `layerInputs[l]` is the aggregated input feeding layer l.
        std::vector<tensor::Matrix> layerInputs;
        std::vector<tensor::Matrix> preacts;
        std::vector<tensor::Matrix> dropMasks(layers);
        layerInputs.push_back(aggX);
        tensor::Matrix logits;
        for (uint32_t l = 0; l < layers; ++l) {
            tensor::Matrix z =
                tensor::matmul(layerInputs[l], activeWeights[l]);
            if (l + 1 == layers) {
                preacts.push_back(z);
                logits = std::move(z);
                break;
            }
            preacts.push_back(z);
            tensor::Matrix h = tensor::relu(z);

            // Selective updating: non-important vertices keep the
            // stale crossbar image between cold refreshes, at every
            // hidden layer (each layer's feature map is a separate
            // crossbar region).
            if (policy.enabled) {
                auto &stale = staleH[l];
                if (coldRefresh) {
                    stale = h;
                } else {
                    for (graph::VertexId v = 0; v < g.numVertices();
                         ++v) {
                        if (!important[v]) {
                            std::copy(stale.rowPtr(v),
                                      stale.rowPtr(v) + h.cols(),
                                      h.rowPtr(v));
                        } else {
                            std::copy(h.rowPtr(v),
                                      h.rowPtr(v) + h.cols(),
                                      stale.rowPtr(v));
                        }
                    }
                }
            }

            // Inverted dropout (training path); the mask also gates
            // the backward pass.
            if (config_.dropout > 0.0) {
                const float keep =
                    1.0f - static_cast<float>(config_.dropout);
                dropMasks[l] = tensor::Matrix(h.rows(), h.cols());
                float *mp = dropMasks[l].data();
                float *hp = h.data();
                for (size_t i = 0; i < h.size(); ++i) {
                    mp[i] =
                        rng.bernoulli(keep) ? 1.0f / keep : 0.0f;
                    hp[i] *= mp[i];
                }
            }
            layerInputs.push_back(aggregate(h));
        }
        if (policy.enabled && coldRefresh)
            staleValid = true;

        tensor::Matrix grad;
        const float loss = tensor::softmaxCrossEntropy(
            logits, data_.labels, trainMask_, &grad);
        result.lossHistory.push_back(loss);
        result.finalTrainLoss = loss;

        // Backward pass: mirror the forward loop.
        std::vector<tensor::Matrix> weightGrads(layers);
        for (uint32_t li = layers; li > 0; --li) {
            const uint32_t l = li - 1;
            weightGrads[l] =
                tensor::matmulTransA(layerInputs[l], grad);
            if (l == 0)
                break;
            // Upstream through the aggregation (A_hat symmetric),
            // the dropout mask, and the ReLU of layer l-1; the
            // backward MVMs run on the same programmed crossbars.
            tensor::Matrix up = aggregate(
                tensor::matmulTransB(grad, activeWeights[l]));
            if (config_.dropout > 0.0) {
                float *dp = up.data();
                const float *mp = dropMasks[l - 1].data();
                for (size_t i = 0; i < up.size(); ++i)
                    dp[i] *= mp[i];
            }
            grad = tensor::reluBackward(up, preacts[l - 1]);
        }

        // Adam step with decoupled weight decay.
        const double corr1 =
            1.0 - std::pow(beta1, static_cast<double>(epoch) + 1.0);
        const double corr2 =
            1.0 - std::pow(beta2, static_cast<double>(epoch) + 1.0);
        for (uint32_t l = 0; l < layers; ++l) {
            float *wp = weights[l].data();
            const float *gp = weightGrads[l].data();
            float *mp = mAdam[l].data();
            float *vp = vAdam[l].data();
            for (size_t i = 0; i < weights[l].size(); ++i) {
                const double gradW =
                    gp[i] + config_.weightDecay *
                                static_cast<double>(wp[i]);
                mp[i] = static_cast<float>(beta1 * mp[i] +
                                           (1.0 - beta1) * gradW);
                vp[i] = static_cast<float>(
                    beta2 * vp[i] + (1.0 - beta2) * gradW * gradW);
                wp[i] -= static_cast<float>(
                    config_.learningRate * (mp[i] / corr1) /
                    (std::sqrt(vp[i] / corr2) + eps));
            }
        }

        const double acc =
            tensor::accuracy(logits, data_.labels, testMask_);
        result.finalTestAccuracy = acc;
        result.bestTestAccuracy =
            std::max(result.bestTestAccuracy, acc);
    }
    return result;
}

} // namespace gopim::gcn
