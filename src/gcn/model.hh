/**
 * @file
 * GCN model architectures and training hyperparameters (Table IV).
 */

#ifndef GOPIM_GCN_MODEL_HH
#define GOPIM_GCN_MODEL_HH

#include <cstdint>
#include <string>
#include <utility>

namespace gopim::gcn {

/** GCN architecture + training hyperparameters for one dataset. */
struct GcnModelConfig
{
    std::string name;
    uint32_t numLayers = 2;
    double learningRate = 0.01;
    double dropout = 0.0;
    uint32_t inputChannels = 0;
    uint32_t hiddenChannels = 256;
    uint32_t outputChannels = 0;

    /**
     * (input, output) feature dims of layer l (1-based): first layer
     * maps input->hidden, middle layers hidden->hidden, last layer
     * hidden->output.
     */
    std::pair<uint32_t, uint32_t> layerDims(uint32_t layer) const;

    /** Total pipeline stages for training: 4 per layer. */
    uint32_t numStages() const { return 4 * numLayers; }
};

/** Table IV configuration for a dataset; fatal() on unknown names. */
GcnModelConfig paperModelFor(const std::string &datasetName);

} // namespace gopim::gcn

#endif // GOPIM_GCN_MODEL_HH
