/**
 * @file
 * Workload descriptor: a dataset, a model, and the batching regime,
 * plus the execution policy knobs that differentiate the compared
 * accelerator systems, and the vertex profile (degrees) that drives
 * mapping-dependent costs.
 */

#ifndef GOPIM_GCN_WORKLOAD_HH
#define GOPIM_GCN_WORKLOAD_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "graph/datasets.hh"
#include "gcn/model.hh"
#include "mapping/selective.hh"
#include "mapping/vertex_map.hh"

namespace gopim::gcn {

/** One training workload (Section VII-A setup). */
struct Workload
{
    graph::DatasetSpec dataset;
    GcnModelConfig model;
    uint32_t microBatchSize = 64;
    uint32_t epochs = 1;
    uint64_t seed = 1;

    /** Micro-batches needed to cover the vertex set once. */
    uint32_t microBatchesPerEpoch() const;

    /** Paper-default workload for a dataset name. */
    static Workload paperDefault(const std::string &datasetName);
};

/**
 * Execution policy: which of the paper's techniques are active. The
 * named systems (Serial, SlimGNN-like, ...) are policy presets
 * combined with an allocator choice in core/systems.hh.
 */
struct ExecutionPolicy
{
    mapping::VertexMapStrategy mapStrategy =
        mapping::VertexMapStrategy::IndexBased;

    /** Selective vertex updating on/off. */
    bool selectiveUpdate = false;
    /** Update threshold; <= 0 selects the adaptive rule (§VI-C). */
    double theta = 0.0;
    uint32_t coldPeriod = 20;

    /** Pipelining regime. */
    bool intraBatchPipeline = false;
    bool interBatchPipeline = false;

    /**
     * ReFlip-style hybrid execution: low-degree vertices execute
     * column-major and are repeatedly reloaded, adding write traffic
     * proportional to edge count (Section VII-B's explanation).
     */
    bool hybridReload = false;

    /** SlimGNN-like input subgraph pruning: fraction of edges kept. */
    double edgeKeepFraction = 1.0;

    /** Resolved update threshold for a dataset. */
    double resolvedTheta(const graph::DatasetSpec &dataset) const;
};

/**
 * Degree profile of a workload's (synthetic) graph plus the derived
 * mapping artifacts, computed once and shared by the timing model.
 */
struct VertexProfile
{
    std::vector<uint32_t> degrees;

    /** Build by sampling the dataset's degree distribution. */
    static VertexProfile build(const graph::DatasetSpec &dataset,
                               uint64_t seed);
};

} // namespace gopim::gcn

#endif // GOPIM_GCN_WORKLOAD_HH
