#include "gcn/link_trainer.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"
#include "mapping/selective.hh"
#include "tensor/init.hh"
#include "tensor/ops.hh"

namespace gopim::gcn {

double
rocAuc(const std::vector<float> &positiveScores,
       const std::vector<float> &negativeScores)
{
    GOPIM_ASSERT(!positiveScores.empty() && !negativeScores.empty(),
                 "AUC needs both classes");
    // Rank-sum (Mann-Whitney) formulation.
    std::vector<std::pair<float, int>> all;
    all.reserve(positiveScores.size() + negativeScores.size());
    for (float s : positiveScores)
        all.push_back({s, 1});
    for (float s : negativeScores)
        all.push_back({s, 0});
    std::sort(all.begin(), all.end(), [](const auto &a, const auto &b) {
        return a.first < b.first;
    });

    // Average ranks over ties.
    double rankSumPositive = 0.0;
    size_t i = 0;
    while (i < all.size()) {
        size_t j = i;
        while (j < all.size() && all[j].first == all[i].first)
            ++j;
        const double avgRank =
            (static_cast<double>(i) + static_cast<double>(j - 1)) /
                2.0 +
            1.0;
        for (size_t k = i; k < j; ++k)
            if (all[k].second == 1)
                rankSumPositive += avgRank;
        i = j;
    }
    const double np = static_cast<double>(positiveScores.size());
    const double nn = static_cast<double>(negativeScores.size());
    return (rankSumPositive - np * (np + 1.0) / 2.0) / (np * nn);
}

LinkPredictionTrainer::LinkPredictionTrainer(const graph::Graph &g,
                                             TrainerConfig config,
                                             double testFraction)
    : graph_(g), config_(config)
{
    GOPIM_ASSERT(g.numEdges() >= 10,
                 "link prediction needs a non-trivial edge set");
    GOPIM_ASSERT(testFraction > 0.0 && testFraction < 1.0,
                 "test fraction must be in (0, 1)");
    Rng rng(config_.seed);

    // Random features (no label leakage; structure is the signal).
    features_ = tensor::uniformInit(g.numVertices(),
                                    config_.featureDim, -1.0f, 1.0f,
                                    rng);

    // Collect undirected edges and split.
    std::vector<Edge> edges;
    for (graph::VertexId u = 0; u < g.numVertices(); ++u)
        for (graph::VertexId v : g.neighbors(u))
            if (u < v)
                edges.push_back({u, v});
    rng.shuffle(edges);
    const auto testCount = std::max<size_t>(
        1, static_cast<size_t>(
               static_cast<double>(edges.size()) * testFraction));
    testEdges_.assign(edges.begin(),
                      edges.begin() + static_cast<long>(testCount));
    trainEdges_.assign(edges.begin() + static_cast<long>(testCount),
                       edges.end());

    // Message passing sees only the training edges.
    trainGraph_ = graph::Graph::fromEdges(
        g.numVertices(),
        std::vector<Edge>(trainEdges_.begin(), trainEdges_.end()));

    normCoeff_.resize(g.numVertices());
    for (graph::VertexId v = 0; v < g.numVertices(); ++v)
        normCoeff_[v] =
            1.0f / std::sqrt(
                       static_cast<float>(trainGraph_.degree(v)) +
                       1.0f);
}

tensor::Matrix
LinkPredictionTrainer::aggregate(const tensor::Matrix &h) const
{
    tensor::Matrix out(h.rows(), h.cols(), 0.0f);
    for (graph::VertexId v = 0; v < trainGraph_.numVertices(); ++v) {
        float *dst = out.rowPtr(v);
        const float nv = normCoeff_[v];
        const float selfW = nv * nv;
        const float *self = h.rowPtr(v);
        for (size_t c = 0; c < h.cols(); ++c)
            dst[c] += selfW * self[c];
        for (graph::VertexId u : trainGraph_.neighbors(v)) {
            const float w = nv * normCoeff_[u];
            const float *src = h.rowPtr(u);
            for (size_t c = 0; c < h.cols(); ++c)
                dst[c] += w * src[c];
        }
    }
    return out;
}

LinkTrainResult
LinkPredictionTrainer::train(const SelectivePolicy &policy) const
{
    const auto n = graph_.numVertices();
    Rng rng(config_.seed + 31);

    tensor::Matrix w1 = tensor::xavierUniform(
        config_.featureDim, config_.hiddenChannels, rng);
    tensor::Matrix w2 = tensor::xavierUniform(
        config_.hiddenChannels, config_.hiddenChannels, rng);

    std::vector<bool> important(n, true);
    if (policy.enabled)
        important = mapping::selectImportant(trainGraph_.degrees(),
                                             policy.theta);

    tensor::Matrix staleH1(n, config_.hiddenChannels, 0.0f);
    bool staleValid = false;

    const tensor::Matrix aggX = aggregate(features_);

    tensor::Matrix m1(w1.rows(), w1.cols(), 0.0f),
        v1(w1.rows(), w1.cols(), 0.0f);
    tensor::Matrix m2(w2.rows(), w2.cols(), 0.0f),
        v2(w2.rows(), w2.cols(), 0.0f);
    const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;

    auto sampleNegative = [&]() {
        while (true) {
            const auto u = static_cast<graph::VertexId>(
                rng.uniformInt(static_cast<uint64_t>(n)));
            const auto v = static_cast<graph::VertexId>(
                rng.uniformInt(static_cast<uint64_t>(n)));
            if (u != v && !graph_.hasEdge(u, v))
                return Edge{u, v};
        }
    };

    LinkTrainResult result;
    for (uint32_t epoch = 0; epoch < config_.epochs; ++epoch) {
        const bool coldRefresh =
            !policy.enabled || !staleValid ||
            (epoch % policy.coldPeriod == 0);

        // Encoder forward: Z = A_hat ReLU(A_hat X W1) W2.
        tensor::Matrix z1 = tensor::matmul(aggX, w1);
        tensor::Matrix h1 = tensor::relu(z1);
        if (policy.enabled) {
            if (coldRefresh) {
                staleH1 = h1;
                staleValid = true;
            } else {
                for (graph::VertexId v = 0; v < n; ++v) {
                    if (!important[v])
                        std::copy(staleH1.rowPtr(v),
                                  staleH1.rowPtr(v) + h1.cols(),
                                  h1.rowPtr(v));
                    else
                        std::copy(h1.rowPtr(v),
                                  h1.rowPtr(v) + h1.cols(),
                                  staleH1.rowPtr(v));
                }
            }
        }
        tensor::Matrix aggH1 = aggregate(h1);
        tensor::Matrix z = tensor::matmul(aggH1, w2);

        // Decoder: BCE over positive train edges + equal negatives.
        // Gradient accumulates into dZ.
        tensor::Matrix dZ(z.rows(), z.cols(), 0.0f);
        double loss = 0.0;
        const auto batch = trainEdges_.size();
        auto scoreAndGrad = [&](const Edge &e, float label) {
            const float *zu = z.rowPtr(e.first);
            const float *zv = z.rowPtr(e.second);
            float dot = 0.0f;
            for (size_t c = 0; c < z.cols(); ++c)
                dot += zu[c] * zv[c];
            const float p =
                1.0f / (1.0f + std::exp(-std::clamp(dot, -30.0f,
                                                    30.0f)));
            loss -= label > 0.5f ? std::log(std::max(p, 1e-12f))
                                 : std::log(std::max(1.0f - p,
                                                     1e-12f));
            const float gradDot =
                (p - label) / static_cast<float>(2 * batch);
            float *du = dZ.rowPtr(e.first);
            float *dv = dZ.rowPtr(e.second);
            for (size_t c = 0; c < z.cols(); ++c) {
                du[c] += gradDot * zv[c];
                dv[c] += gradDot * zu[c];
            }
        };
        for (const Edge &e : trainEdges_)
            scoreAndGrad(e, 1.0f);
        for (size_t i = 0; i < batch; ++i)
            scoreAndGrad(sampleNegative(), 0.0f);
        loss /= static_cast<double>(2 * batch);
        result.lossHistory.push_back(loss);
        result.finalTrainLoss = loss;

        // Backward through the encoder.
        tensor::Matrix gw2 = tensor::matmulTransA(aggH1, dZ);
        tensor::Matrix up =
            aggregate(tensor::matmulTransB(dZ, w2));
        tensor::Matrix dZ1 = tensor::reluBackward(up, z1);
        tensor::Matrix gw1 = tensor::matmulTransA(aggX, dZ1);

        const double corr1 =
            1.0 - std::pow(beta1, static_cast<double>(epoch) + 1.0);
        const double corr2 =
            1.0 - std::pow(beta2, static_cast<double>(epoch) + 1.0);
        auto adam = [&](tensor::Matrix &w, const tensor::Matrix &gw,
                        tensor::Matrix &m, tensor::Matrix &v) {
            float *wp = w.data();
            const float *gp = gw.data();
            float *mp = m.data();
            float *vp = v.data();
            for (size_t i = 0; i < w.size(); ++i) {
                const double grad =
                    gp[i] + config_.weightDecay *
                                static_cast<double>(wp[i]);
                mp[i] = static_cast<float>(beta1 * mp[i] +
                                           (1.0 - beta1) * grad);
                vp[i] = static_cast<float>(
                    beta2 * vp[i] + (1.0 - beta2) * grad * grad);
                wp[i] -= static_cast<float>(
                    config_.learningRate * (mp[i] / corr1) /
                    (std::sqrt(vp[i] / corr2) + eps));
            }
        };
        adam(w1, gw1, m1, v1);
        adam(w2, gw2, m2, v2);

        // Evaluation: AUC on held-out edges vs fresh negatives.
        std::vector<float> posScores, negScores;
        auto score = [&](const Edge &e) {
            const float *zu = z.rowPtr(e.first);
            const float *zv = z.rowPtr(e.second);
            float dot = 0.0f;
            for (size_t c = 0; c < z.cols(); ++c)
                dot += zu[c] * zv[c];
            return dot;
        };
        for (const Edge &e : testEdges_)
            posScores.push_back(score(e));
        for (size_t i = 0; i < testEdges_.size(); ++i)
            negScores.push_back(score(sampleNegative()));
        const double auc = rocAuc(posScores, negScores);
        result.finalTestAuc = auc;
        result.bestTestAuc = std::max(result.bestTestAuc, auc);
    }
    return result;
}

} // namespace gopim::gcn
