/**
 * @file
 * Functional link-prediction trainer for the Table III link datasets
 * (ddi, collab, ppa). A two-layer GCN encoder produces vertex
 * embeddings; a dot-product decoder scores edges; training minimizes
 * binary cross-entropy over held-in edges vs. sampled negatives, and
 * evaluation reports AUC over held-out edges — with the same
 * selective-update staleness emulation as the node trainer.
 */

#ifndef GOPIM_GCN_LINK_TRAINER_HH
#define GOPIM_GCN_LINK_TRAINER_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "gcn/trainer.hh"
#include "graph/graph.hh"
#include "tensor/matrix.hh"

namespace gopim::gcn {

/** Result of a link-prediction training run. */
struct LinkTrainResult
{
    /** AUC over held-out edges vs. sampled negatives (0.5 = chance). */
    double finalTestAuc = 0.0;
    double bestTestAuc = 0.0;
    double finalTrainLoss = 0.0;
    std::vector<double> lossHistory;
};

/** Two-layer GCN encoder + dot-product decoder link predictor. */
class LinkPredictionTrainer
{
  public:
    /**
     * Splits the graph's edges: `testFraction` held out for
     * evaluation, the rest kept as both message-passing structure and
     * positive training examples.
     */
    LinkPredictionTrainer(const graph::Graph &g, TrainerConfig config,
                          double testFraction = 0.15);

    /** Train from fresh weights under the given selective policy. */
    LinkTrainResult train(const SelectivePolicy &policy) const;

    size_t trainEdgeCount() const { return trainEdges_.size(); }
    size_t testEdgeCount() const { return testEdges_.size(); }

  private:
    using Edge = std::pair<graph::VertexId, graph::VertexId>;

    /** Normalized aggregation over the training graph. */
    tensor::Matrix aggregate(const tensor::Matrix &h) const;

    const graph::Graph &graph_;
    TrainerConfig config_;
    tensor::Matrix features_;
    std::vector<float> normCoeff_;
    std::vector<Edge> trainEdges_;
    std::vector<Edge> testEdges_;
    /** Train-graph CSR (test edges removed from message passing). */
    graph::Graph trainGraph_;
};

/**
 * Area under the ROC curve for positive vs negative scores
 * (rank-based; ties get half credit). Exposed for testing.
 */
double rocAuc(const std::vector<float> &positiveScores,
              const std::vector<float> &negativeScores);

} // namespace gopim::gcn

#endif // GOPIM_GCN_LINK_TRAINER_HH
