#include "tensor/arena.hh"

#include <algorithm>
#include <new>

namespace gopim::tensor {

namespace {

constexpr size_t kMinBlockBytes = 1u << 16; // 64 KiB

size_t
roundUp(size_t bytes)
{
    return (bytes + Arena::kAlignment - 1) & ~(Arena::kAlignment - 1);
}

} // namespace

Arena::~Arena()
{
    for (Block &block : blocks_)
        ::operator delete[](block.memory,
                            std::align_val_t{kAlignment});
}

void
Arena::reset()
{
    for (Block &block : blocks_)
        block.used = 0;
    activeBlock_ = 0;
    usedBytes_ = 0;
}

void *
Arena::allocateBytes(size_t bytes)
{
    const size_t need = roundUp(std::max<size_t>(bytes, 1));
    while (activeBlock_ < blocks_.size()) {
        Block &block = blocks_[activeBlock_];
        if (block.capacity - block.used >= need) {
            void *slice = block.memory + block.used;
            block.used += need;
            usedBytes_ += need;
            return slice;
        }
        // A block is abandoned rather than fragmented: the next
        // reset() reclaims its unused tail along with everything else.
        ++activeBlock_;
    }

    // Geometric growth keeps the block count logarithmic in the
    // total footprint, so reset() and the destructor stay cheap.
    const size_t capacity = std::max(
        {need, kMinBlockBytes,
         blocks_.empty() ? size_t{0} : blocks_.back().capacity * 2});
    Block block;
    block.memory = static_cast<std::byte *>(::operator new[](
        capacity, std::align_val_t{kAlignment}));
    block.capacity = capacity;
    block.used = need;
    blocks_.push_back(block);
    activeBlock_ = blocks_.size() - 1;
    usedBytes_ += need;
    capacityBytes_ += capacity;
    return block.memory;
}

} // namespace gopim::tensor
