#include "tensor/ops.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace gopim::tensor {

Matrix
matmul(const Matrix &a, const Matrix &b)
{
    Matrix c;
    matmulInto(a, b, c);
    return c;
}

void
matmulInto(const Matrix &a, const Matrix &b, Matrix &c)
{
    GOPIM_ASSERT(a.cols() == b.rows(), "matmul: inner dims mismatch");
    c.assignShape(a.rows(), b.cols(), 0.0f);
    // ikj loop order keeps the inner loop streaming over rows of B.
    // The zero-skip preserves both the ReLU-sparsity win and the
    // exact +-0.0/NaN bit behavior the parity tests pin.
    for (size_t i = 0; i < a.rows(); ++i) {
        float *cRow = c.rowPtr(i);
        for (size_t k = 0; k < a.cols(); ++k) {
            const float aik = a(i, k);
            if (aik == 0.0f)
                continue;
            const float *bRow = b.rowPtr(k);
            for (size_t j = 0; j < b.cols(); ++j)
                cRow[j] += aik * bRow[j];
        }
    }
}

Matrix
matmulTransA(const Matrix &a, const Matrix &b)
{
    Matrix c;
    matmulTransAInto(a, b, c);
    return c;
}

void
matmulTransAInto(const Matrix &a, const Matrix &b, Matrix &c)
{
    GOPIM_ASSERT(a.rows() == b.rows(), "matmulTransA: dims mismatch");
    c.assignShape(a.cols(), b.cols(), 0.0f);
    for (size_t k = 0; k < a.rows(); ++k) {
        const float *aRow = a.rowPtr(k);
        const float *bRow = b.rowPtr(k);
        for (size_t i = 0; i < a.cols(); ++i) {
            const float aki = aRow[i];
            if (aki == 0.0f)
                continue;
            float *cRow = c.rowPtr(i);
            for (size_t j = 0; j < b.cols(); ++j)
                cRow[j] += aki * bRow[j];
        }
    }
}

Matrix
matmulTransB(const Matrix &a, const Matrix &b)
{
    Matrix c;
    matmulTransBInto(a, b, c);
    return c;
}

void
matmulTransBInto(const Matrix &a, const Matrix &b, Matrix &c)
{
    GOPIM_ASSERT(a.cols() == b.cols(), "matmulTransB: dims mismatch");
    c.assignShape(a.rows(), b.rows(), 0.0f);
    for (size_t i = 0; i < a.rows(); ++i) {
        const float *aRow = a.rowPtr(i);
        float *cRow = c.rowPtr(i);
        for (size_t j = 0; j < b.rows(); ++j) {
            const float *bRow = b.rowPtr(j);
            float dot = 0.0f;
            for (size_t k = 0; k < a.cols(); ++k)
                dot += aRow[k] * bRow[k];
            cRow[j] = dot;
        }
    }
}

std::vector<float>
mvm(const Matrix &a, const std::vector<float> &x)
{
    GOPIM_ASSERT(x.size() == a.cols(), "mvm: dimension mismatch");
    std::vector<float> y(a.rows(), 0.0f);
    for (size_t i = 0; i < a.rows(); ++i) {
        const float *row = a.rowPtr(i);
        float dot = 0.0f;
        for (size_t j = 0; j < a.cols(); ++j)
            dot += row[j] * x[j];
        y[i] = dot;
    }
    return y;
}

Matrix
add(const Matrix &a, const Matrix &b)
{
    GOPIM_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
                 "add: shape mismatch");
    Matrix c = a;
    addScaled(c, b, 1.0f);
    return c;
}

Matrix
sub(const Matrix &a, const Matrix &b)
{
    GOPIM_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
                 "sub: shape mismatch");
    Matrix c = a;
    addScaled(c, b, -1.0f);
    return c;
}

void
addScaled(Matrix &a, const Matrix &b, float s)
{
    GOPIM_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
                 "addScaled: shape mismatch");
    float *pa = a.data();
    const float *pb = b.data();
    for (size_t i = 0; i < a.size(); ++i)
        pa[i] += s * pb[i];
}

void
scale(Matrix &a, float s)
{
    float *p = a.data();
    for (size_t i = 0; i < a.size(); ++i)
        p[i] *= s;
}

void
addRowBias(Matrix &a, const std::vector<float> &bias)
{
    GOPIM_ASSERT(bias.size() == a.cols(), "addRowBias: width mismatch");
    for (size_t r = 0; r < a.rows(); ++r) {
        float *row = a.rowPtr(r);
        for (size_t c = 0; c < a.cols(); ++c)
            row[c] += bias[c];
    }
}

Matrix
relu(const Matrix &a)
{
    Matrix out;
    reluInto(a, out);
    return out;
}

void
reluInto(const Matrix &a, Matrix &out)
{
    out.assignShape(a.rows(), a.cols(), 0.0f);
    float *p = out.data();
    const float *in = a.data();
    for (size_t i = 0; i < a.size(); ++i)
        p[i] = std::max(in[i], 0.0f);
}

Matrix
reluBackward(const Matrix &grad, const Matrix &input)
{
    Matrix out;
    reluBackwardInto(grad, input, out);
    return out;
}

void
reluBackwardInto(const Matrix &grad, const Matrix &input, Matrix &out)
{
    GOPIM_ASSERT(grad.rows() == input.rows() &&
                     grad.cols() == input.cols(),
                 "reluBackward: shape mismatch");
    out.assignShape(grad.rows(), grad.cols(), 0.0f);
    float *p = out.data();
    const float *g = grad.data();
    const float *in = input.data();
    for (size_t i = 0; i < grad.size(); ++i)
        p[i] = in[i] <= 0.0f ? 0.0f : g[i];
}

Matrix
softmaxRows(const Matrix &logits)
{
    Matrix out = logits;
    for (size_t r = 0; r < out.rows(); ++r) {
        float *row = out.rowPtr(r);
        float maxVal = row[0];
        for (size_t c = 1; c < out.cols(); ++c)
            maxVal = std::max(maxVal, row[c]);
        float sum = 0.0f;
        for (size_t c = 0; c < out.cols(); ++c) {
            row[c] = std::exp(row[c] - maxVal);
            sum += row[c];
        }
        for (size_t c = 0; c < out.cols(); ++c)
            row[c] /= sum;
    }
    return out;
}

float
softmaxCrossEntropy(const Matrix &logits, const std::vector<int> &labels,
                    const std::vector<uint32_t> &rows, Matrix *outGrad)
{
    GOPIM_ASSERT(labels.size() == logits.rows(),
                 "cross entropy: one label per row required");
    GOPIM_ASSERT(!rows.empty(), "cross entropy over empty row set");
    if (outGrad)
        outGrad->assignShape(logits.rows(), logits.cols(), 0.0f);

    const Matrix probs = softmaxRows(logits);
    const float invN = 1.0f / static_cast<float>(rows.size());
    float loss = 0.0f;
    for (uint32_t r : rows) {
        GOPIM_ASSERT(r < logits.rows(), "cross entropy: row out of range");
        const int label = labels[r];
        GOPIM_ASSERT(label >= 0 &&
                         static_cast<size_t>(label) < logits.cols(),
                     "cross entropy: label out of range");
        const float p = std::max(probs(r, static_cast<size_t>(label)),
                                 1e-12f);
        loss -= std::log(p);
        if (outGrad) {
            for (size_t c = 0; c < logits.cols(); ++c)
                (*outGrad)(r, c) = probs(r, c) * invN;
            (*outGrad)(r, static_cast<size_t>(label)) -= invN;
        }
    }
    return loss * invN;
}

double
accuracy(const Matrix &logits, const std::vector<int> &labels,
         const std::vector<uint32_t> &rows)
{
    GOPIM_ASSERT(!rows.empty(), "accuracy over empty row set");
    size_t correct = 0;
    for (uint32_t r : rows) {
        const float *row = logits.rowPtr(r);
        size_t best = 0;
        for (size_t c = 1; c < logits.cols(); ++c)
            if (row[c] > row[best])
                best = c;
        if (static_cast<int>(best) == labels[r])
            ++correct;
    }
    return static_cast<double>(correct) /
           static_cast<double>(rows.size());
}

float
frobeniusNorm(const Matrix &a)
{
    double sum = 0.0;
    const float *p = a.data();
    for (size_t i = 0; i < a.size(); ++i)
        sum += static_cast<double>(p[i]) * p[i];
    return static_cast<float>(std::sqrt(sum));
}

} // namespace gopim::tensor
