/**
 * @file
 * Dense row-major float matrix used by the ML library and the
 * functional GCN trainer. Deliberately minimal: the simulator's hot
 * paths are analytic, so this favors clarity over BLAS-grade tuning.
 */

#ifndef GOPIM_TENSOR_MATRIX_HH
#define GOPIM_TENSOR_MATRIX_HH

#include <cstddef>
#include <vector>

namespace gopim::tensor {

/** Dense row-major matrix of floats. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** rows x cols matrix initialized to `fill`. */
    Matrix(size_t rows, size_t cols, float fill = 0.0f);

    /** Build from nested initializer data (row major); rows must agree. */
    static Matrix fromRows(const std::vector<std::vector<float>> &rows);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float &at(size_t r, size_t c);
    float at(size_t r, size_t c) const;

    float &operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
    float operator()(size_t r, size_t c) const
    {
        return data_[r * cols_ + c];
    }

    float *rowPtr(size_t r) { return data_.data() + r * cols_; }
    const float *rowPtr(size_t r) const { return data_.data() + r * cols_; }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Set all elements to `value`. */
    void fill(float value);

    /**
     * Reshape to rows x cols with every element set to `fill`,
     * reusing the existing allocation when capacity allows. The
     * workhorse of scratch-buffer reuse: repeated kernels write into
     * the same matrix without per-call heap traffic.
     */
    void assignShape(size_t rows, size_t cols, float fill = 0.0f);

    /** Return the transpose. */
    Matrix transposed() const;

    /** Exact element-wise equality (for tests). */
    bool operator==(const Matrix &other) const;

    /** Max absolute element difference; matrices must be same shape. */
    float maxAbsDiff(const Matrix &other) const;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<float> data_;
};

} // namespace gopim::tensor

#endif // GOPIM_TENSOR_MATRIX_HH
