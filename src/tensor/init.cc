#include "tensor/init.hh"

#include <cmath>

namespace gopim::tensor {

Matrix
xavierUniform(size_t rows, size_t cols, Rng &rng)
{
    const double a = std::sqrt(6.0 / static_cast<double>(rows + cols));
    return uniformInit(rows, cols, static_cast<float>(-a),
                       static_cast<float>(a), rng);
}

Matrix
heNormal(size_t rows, size_t cols, Rng &rng)
{
    const double stddev = std::sqrt(2.0 / static_cast<double>(rows));
    Matrix m(rows, cols);
    float *p = m.data();
    for (size_t i = 0; i < m.size(); ++i)
        p[i] = static_cast<float>(rng.normal(0.0, stddev));
    return m;
}

Matrix
uniformInit(size_t rows, size_t cols, float lo, float hi, Rng &rng)
{
    Matrix m(rows, cols);
    float *p = m.data();
    for (size_t i = 0; i < m.size(); ++i)
        p[i] = static_cast<float>(rng.uniform(lo, hi));
    return m;
}

} // namespace gopim::tensor
