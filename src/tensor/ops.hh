/**
 * @file
 * Dense linear-algebra kernels and neural-network primitives over
 * Matrix: GEMM/MVM, elementwise ops, activations, and losses.
 */

#ifndef GOPIM_TENSOR_OPS_HH
#define GOPIM_TENSOR_OPS_HH

#include <cstdint>
#include <vector>

#include "tensor/matrix.hh"

namespace gopim::tensor {

/** C = A * B. Shapes must agree (A: m x k, B: k x n). */
Matrix matmul(const Matrix &a, const Matrix &b);

/** C = A^T * B (without materializing the transpose). */
Matrix matmulTransA(const Matrix &a, const Matrix &b);

/** C = A * B^T (without materializing the transpose). */
Matrix matmulTransB(const Matrix &a, const Matrix &b);

// Into-variants of the kernels above (plus relu): identical
// arithmetic in identical order, writing into a caller-owned buffer
// that is reshaped in place — so hot loops that run every epoch can
// reuse one allocation instead of constructing a fresh Matrix per
// call. The value-returning forms delegate to these.

/** c = A * B, reusing c's allocation. c must not alias a or b. */
void matmulInto(const Matrix &a, const Matrix &b, Matrix &c);

/** c = A^T * B, reusing c's allocation. No aliasing. */
void matmulTransAInto(const Matrix &a, const Matrix &b, Matrix &c);

/** c = A * B^T, reusing c's allocation. No aliasing. */
void matmulTransBInto(const Matrix &a, const Matrix &b, Matrix &c);

/** y = A * x for a dense vector x (x.size() == A.cols()). */
std::vector<float> mvm(const Matrix &a, const std::vector<float> &x);

/** Element-wise sum; shapes must agree. */
Matrix add(const Matrix &a, const Matrix &b);

/** Element-wise difference a - b; shapes must agree. */
Matrix sub(const Matrix &a, const Matrix &b);

/** a += scale * b, in place; shapes must agree. */
void addScaled(Matrix &a, const Matrix &b, float scale);

/** Multiply every element by `scale`, in place. */
void scale(Matrix &a, float scale);

/** Add row vector `bias` (length cols) to every row, in place. */
void addRowBias(Matrix &a, const std::vector<float> &bias);

/** ReLU applied element-wise (returns a copy). */
Matrix relu(const Matrix &a);

/** ReLU into a reusable buffer. out must not alias a. */
void reluInto(const Matrix &a, Matrix &out);

/**
 * Backward of ReLU: grad masked by the forward *input* sign
 * (out = grad where input > 0 else 0).
 */
Matrix reluBackward(const Matrix &grad, const Matrix &input);

/** ReLU backward into a reusable buffer. out must not alias inputs. */
void reluBackwardInto(const Matrix &grad, const Matrix &input,
                      Matrix &out);

/** Row-wise softmax (numerically stabilized). */
Matrix softmaxRows(const Matrix &logits);

/**
 * Mean cross-entropy over the given rows against integer labels, and
 * (via outGrad) the gradient w.r.t. the logits for exactly those rows
 * (zero elsewhere). Rows not listed in `rows` do not contribute.
 */
float softmaxCrossEntropy(const Matrix &logits,
                          const std::vector<int> &labels,
                          const std::vector<uint32_t> &rows,
                          Matrix *outGrad);

/** Fraction of rows (from `rows`) whose argmax matches the label. */
double accuracy(const Matrix &logits, const std::vector<int> &labels,
                const std::vector<uint32_t> &rows);

/** Frobenius norm. */
float frobeniusNorm(const Matrix &a);

} // namespace gopim::tensor

#endif // GOPIM_TENSOR_OPS_HH
