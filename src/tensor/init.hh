/**
 * @file
 * Weight initializers for the ML library and the functional trainer.
 */

#ifndef GOPIM_TENSOR_INIT_HH
#define GOPIM_TENSOR_INIT_HH

#include "common/rng.hh"
#include "tensor/matrix.hh"

namespace gopim::tensor {

/** Xavier/Glorot uniform initialization: U(-a, a), a = sqrt(6/(in+out)). */
Matrix xavierUniform(size_t rows, size_t cols, Rng &rng);

/** He/Kaiming normal initialization: N(0, sqrt(2/in)). */
Matrix heNormal(size_t rows, size_t cols, Rng &rng);

/** Uniform initialization in [lo, hi). */
Matrix uniformInit(size_t rows, size_t cols, float lo, float hi, Rng &rng);

} // namespace gopim::tensor

#endif // GOPIM_TENSOR_INIT_HH
