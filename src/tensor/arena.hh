/**
 * @file
 * Bump-pointer arena for numeric scratch data. One arena owns a few
 * large 64-byte-aligned blocks; allocate<T>() carves aligned slices
 * off them, and reset() recycles every block without returning
 * memory to the OS. Intended for SoA kernel data (adjacency slabs,
 * per-run float workspaces) where thousands of small vector
 * allocations would otherwise dominate the profile.
 *
 * Allocations are trivially-destructible only — the arena never runs
 * destructors. Pointers stay valid until reset() or destruction;
 * blocks are never reallocated in place.
 */

#ifndef GOPIM_TENSOR_ARENA_HH
#define GOPIM_TENSOR_ARENA_HH

#include <cstddef>
#include <type_traits>
#include <vector>

namespace gopim::tensor {

/** 64-byte-aligned bump allocator with O(1) whole-arena reuse. */
class Arena
{
  public:
    /** Cache-line / AVX-512 friendly alignment for every slice. */
    static constexpr size_t kAlignment = 64;

    Arena() = default;
    ~Arena();

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Aligned slice of `count` T's; valid until reset()/destruction. */
    template <typename T>
    T *
    allocate(size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena memory is reclaimed without destructors");
        static_assert(alignof(T) <= kAlignment,
                      "type alignment exceeds the arena alignment");
        return static_cast<T *>(allocateBytes(count * sizeof(T)));
    }

    /** Recycle all blocks; previously returned pointers die here. */
    void reset();

    size_t usedBytes() const { return usedBytes_; }
    size_t capacityBytes() const { return capacityBytes_; }

  private:
    void *allocateBytes(size_t bytes);

    struct Block
    {
        std::byte *memory = nullptr;
        size_t capacity = 0;
        size_t used = 0;
    };

    std::vector<Block> blocks_;
    size_t activeBlock_ = 0;
    size_t usedBytes_ = 0;
    size_t capacityBytes_ = 0;
};

} // namespace gopim::tensor

#endif // GOPIM_TENSOR_ARENA_HH
