#include "tensor/matrix.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace gopim::tensor {

Matrix::Matrix(size_t rows, size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix
Matrix::fromRows(const std::vector<std::vector<float>> &rows)
{
    GOPIM_ASSERT(!rows.empty(), "fromRows needs at least one row");
    Matrix m(rows.size(), rows.front().size());
    for (size_t r = 0; r < rows.size(); ++r) {
        GOPIM_ASSERT(rows[r].size() == m.cols_,
                     "fromRows: ragged row lengths");
        std::copy(rows[r].begin(), rows[r].end(), m.rowPtr(r));
    }
    return m;
}

float &
Matrix::at(size_t r, size_t c)
{
    GOPIM_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
}

float
Matrix::at(size_t r, size_t c) const
{
    GOPIM_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
}

void
Matrix::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
Matrix::assignShape(size_t rows, size_t cols, float fill)
{
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
}

Matrix
Matrix::transposed() const
{
    Matrix t(cols_, rows_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            t(c, r) = (*this)(r, c);
    return t;
}

bool
Matrix::operator==(const Matrix &other) const
{
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
}

float
Matrix::maxAbsDiff(const Matrix &other) const
{
    GOPIM_ASSERT(rows_ == other.rows_ && cols_ == other.cols_,
                 "maxAbsDiff: shape mismatch");
    float maxDiff = 0.0f;
    for (size_t i = 0; i < data_.size(); ++i)
        maxDiff = std::max(maxDiff, std::fabs(data_[i] - other.data_[i]));
    return maxDiff;
}

} // namespace gopim::tensor
