/**
 * @file
 * Minimal child-process management for the cluster layer: spawn a
 * worker binary, kill it (the chaos harness uses SIGKILL to model a
 * crash, shutdown uses SIGTERM), and reap its exit status. Kept
 * deliberately tiny — the router only ever manages a handful of
 * long-lived worker processes.
 */

#ifndef GOPIM_CLUSTER_PROC_HH
#define GOPIM_CLUSTER_PROC_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gopim::cluster {

/**
 * fork/execvp `argv` (argv[0] is the binary; PATH-resolved). The
 * child inherits stderr so worker logs stay visible. Returns the
 * pid, or -1 with `error` filled.
 */
int64_t spawnProcess(const std::vector<std::string> &argv,
                     std::string *error);

/** Send `sig` to `pid` (no-op for pid <= 0). */
void killProcess(int64_t pid, int sig);

/**
 * waitpid wrapper. Non-blocking unless `block`; returns true once
 * the child has been reaped (or never existed).
 */
bool reapProcess(int64_t pid, bool block);

/**
 * Whitespace-split a command line into argv (no quoting — worker
 * commands are flag lists, which never need embedded spaces).
 */
std::vector<std::string> splitCommand(const std::string &command);

} // namespace gopim::cluster

#endif // GOPIM_CLUSTER_PROC_HH
