/**
 * @file
 * Cluster wire protocol on top of the length-prefixed frames in
 * common/net.hh. Every connection opens with a hello exchange:
 *
 *   client/router → worker:
 *     {"proto":"gopim.cluster.v1","role":"router",
 *      "envelope":"stable","defaults":"<fp>"}
 *   worker → client/router (accept):
 *     {"type":"hello","proto":"gopim.cluster.v1","defaults":"<fp>"}
 *   worker → client/router (reject): a {"type":"error",...} frame,
 *     then close.
 *
 * `defaults` is serve::defaultsFingerprint — the cache key the empty
 * request resolves to. A router/worker pair that disagrees on it
 * would silently return different bytes for the same request, so the
 * mismatch is rejected at connect time. After the hello, every frame
 * in is one JSONL request line and every frame out is one JSONL
 * response line, strictly in request order per connection.
 */

#ifndef GOPIM_CLUSTER_WIRE_HH
#define GOPIM_CLUSTER_WIRE_HH

#include <string>

#include "serve/service.hh"

namespace gopim::cluster {

/** Protocol identifier; bump on any framing/semantic change. */
inline constexpr const char *kProtocolVersion = "gopim.cluster.v1";

/** Decoded hello frame. */
struct Hello
{
    std::string role;       ///< "router" or "client" (informational)
    serve::Envelope envelope = serve::Envelope::Full;
    bool envelopeSet = false; ///< hello named one (else worker default)
    std::string defaultsFp; ///< "" = peer skips the check
};

/** The hello payload a connecting client/router sends. */
std::string helloLine(const std::string &role,
                      serve::Envelope envelope,
                      const std::string &defaultsFp);

/** The accepting reply a worker sends. */
std::string helloOkLine(const std::string &defaultsFp);

/**
 * Decode and validate a hello payload; returns "" and fills `out`
 * on success, else a one-line reason (unsupported proto, bad JSON,
 * bad envelope name).
 */
std::string parseHello(const std::string &payload, Hello *out);

/**
 * Validate a worker's hello-ok reply against our fingerprint;
 * "" on success. A {"type":"error"} reply surfaces its message.
 */
std::string checkHelloReply(const std::string &payload,
                            const std::string &expectedFp);

} // namespace gopim::cluster

#endif // GOPIM_CLUSTER_WIRE_HH
