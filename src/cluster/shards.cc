#include "cluster/shards.hh"

#include "common/hash.hh"
#include "common/logging.hh"

namespace gopim::cluster {

uint64_t
rendezvousScore(const std::string &name, const std::string &key)
{
    // Chained FNV-1a: hash the shard name, then continue over the
    // key. One pass per (shard, key) pair, stable across platforms.
    return fnv1a64(key, fnv1a64(name));
}

size_t
rendezvousShard(const std::string &key,
                const std::vector<std::string> &names)
{
    if (names.empty())
        panic("rendezvousShard called with no shards");
    size_t winner = 0;
    uint64_t best = rendezvousScore(names[0], key);
    for (size_t i = 1; i < names.size(); ++i) {
        const uint64_t score = rendezvousScore(names[i], key);
        if (score > best ||
            (score == best && names[i] < names[winner])) {
            best = score;
            winner = i;
        }
    }
    return winner;
}

bool
parseEndpoint(const std::string &endpoint, ShardSpec *out,
              std::string *error)
{
    const size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == endpoint.size()) {
        if (error)
            *error = "malformed endpoint '" + endpoint +
                     "' (expected host:port)";
        return false;
    }
    int port = 0;
    for (size_t i = colon + 1; i < endpoint.size(); ++i) {
        const char c = endpoint[i];
        if (c < '0' || c > '9' || (port = port * 10 + (c - '0')) >
                                      65535) {
            if (error)
                *error = "bad port in endpoint '" + endpoint + "'";
            return false;
        }
    }
    if (port == 0) {
        if (error)
            *error = "bad port in endpoint '" + endpoint +
                     "' (0 is reserved for ephemeral binds)";
        return false;
    }
    ShardSpec spec;
    spec.name = endpoint;
    spec.host = endpoint.substr(0, colon);
    spec.port = static_cast<uint16_t>(port);
    *out = std::move(spec);
    return true;
}

} // namespace gopim::cluster
