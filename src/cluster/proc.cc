#include "cluster/proc.hh"

#include <cerrno>
#include <cstring>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace gopim::cluster {

int64_t
spawnProcess(const std::vector<std::string> &argv, std::string *error)
{
    if (argv.empty()) {
        if (error)
            *error = "empty command";
        return -1;
    }
    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string &arg : argv)
        cargv.push_back(const_cast<char *>(arg.c_str()));
    cargv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        if (error)
            *error = std::string("fork(): ") + std::strerror(errno);
        return -1;
    }
    if (pid == 0) {
        ::execvp(cargv[0], cargv.data());
        // Exec failed; nothing sensible to do in the child but exit.
        _exit(127);
    }
    return pid;
}

void
killProcess(int64_t pid, int sig)
{
    if (pid > 0)
        ::kill(static_cast<pid_t>(pid), sig);
}

bool
reapProcess(int64_t pid, bool block)
{
    if (pid <= 0)
        return true;
    int status = 0;
    const pid_t rc = ::waitpid(static_cast<pid_t>(pid), &status,
                               block ? 0 : WNOHANG);
    if (rc == static_cast<pid_t>(pid))
        return true;
    if (rc < 0 && errno == ECHILD)
        return true; // not our child (or already reaped)
    return false;
}

std::vector<std::string>
splitCommand(const std::string &command)
{
    std::vector<std::string> argv;
    std::string current;
    for (const char c : command) {
        if (c == ' ' || c == '\t') {
            if (!current.empty()) {
                argv.push_back(current);
                current.clear();
            }
        } else {
            current += c;
        }
    }
    if (!current.empty())
        argv.push_back(current);
    return argv;
}

} // namespace gopim::cluster
