/**
 * @file
 * Admission control and load shedding for the cluster router. The
 * controller's state IS the observability instruments: per-shard
 * in-flight depth lives in `cluster.shard<i>.inflight` gauges
 * (up/down via obs::Gauge::add), request latency in the
 * `cluster.request.latency_us` histogram, and sheds in the
 * `cluster.shed.count` counter. Decisions read those instruments
 * back, so what the operator sees in --metrics-out is exactly what
 * drove the router's behaviour.
 *
 * Policy: a shard at or above `shedAbove` in-flight requests sheds
 * (structured {"code":"overloaded"} error, immediate); between
 * `maxInflightPerShard` and `shedAbove` the dispatcher blocks
 * (backpressure); a positive `shedLatencyAboveUs` converts blocking
 * into shedding once the observed mean latency crosses it — a
 * saturated *and* slow shard is past helping.
 */

#ifndef GOPIM_CLUSTER_ADMISSION_HH
#define GOPIM_CLUSTER_ADMISSION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hh"

namespace gopim::cluster {

/** Router-level admission knobs. */
struct AdmissionConfig
{
    /** Dispatcher blocks at this per-shard in-flight depth. */
    size_t maxInflightPerShard = 64;
    /** Shed (reject) at this depth; 0 = never shed. */
    size_t shedAbove = 0;
    /**
     * With a positive value: once the mean observed request latency
     * exceeds this many microseconds, a saturated shard sheds
     * instead of blocking.
     */
    double shedLatencyAboveUs = 0.0;
};

/** What to do with a request headed for a shard. */
enum class Admit
{
    Accept,
    Block,
    Shed,
};

/** Metric-driven admission decisions; thread-safe (atomic gauges). */
class AdmissionController
{
  public:
    AdmissionController(AdmissionConfig config,
                        obs::MetricsRegistry &registry,
                        size_t shardCount);

    Admit decide(size_t shard) const;

    /** A request was framed onto `shard` (journal grew). */
    void onDispatch(size_t shard);
    /** `shard` answered one request (journal shrank). */
    void onComplete(size_t shard);
    /** A shed was emitted for `shard`. */
    void onShed(size_t shard);
    /** A routed response reached the client; record its latency. */
    void observeLatency(double latencyUs);
    /** A dead shard's journal was re-issued or failed: reset depth. */
    void resetInflight(size_t shard, int64_t depth);

    int64_t inflight(size_t shard) const;
    uint64_t shedCount() const;

  private:
    AdmissionConfig config_;
    std::vector<obs::Gauge *> inflight_;
    std::vector<obs::Gauge *> inflightMax_;
    obs::Counter *shed_;
    obs::Histogram *latency_;
};

} // namespace gopim::cluster

#endif // GOPIM_CLUSTER_ADMISSION_HH
