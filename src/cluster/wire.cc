#include "cluster/wire.hh"

#include "common/json.hh"

namespace gopim::cluster {

namespace {

const char *
envelopeName(serve::Envelope envelope)
{
    return envelope == serve::Envelope::Stable ? "stable" : "full";
}

} // namespace

std::string
helloLine(const std::string &role, serve::Envelope envelope,
          const std::string &defaultsFp)
{
    json::Value v = json::Value::object();
    v.set("proto", kProtocolVersion);
    v.set("role", role);
    v.set("envelope", envelopeName(envelope));
    if (!defaultsFp.empty())
        v.set("defaults", defaultsFp);
    return v.dump();
}

std::string
helloOkLine(const std::string &defaultsFp)
{
    json::Value v = json::Value::object();
    v.set("type", "hello");
    v.set("proto", kProtocolVersion);
    v.set("defaults", defaultsFp);
    return v.dump();
}

std::string
parseHello(const std::string &payload, Hello *out)
{
    json::Value body;
    std::string parseError;
    if (!json::Value::parse(payload, &body, &parseError) ||
        !body.isObject())
        return "hello frame is not a JSON object: " + parseError;
    const json::Value *proto = body.find("proto");
    if (!proto || !proto->isString())
        return "hello frame lacks a 'proto' string";
    if (proto->asString() != kProtocolVersion)
        return "unsupported protocol '" + proto->asString() +
               "' (expected " + std::string(kProtocolVersion) + ")";
    Hello hello;
    if (const json::Value *role = body.find("role");
        role && role->isString())
        hello.role = role->asString();
    if (const json::Value *envelope = body.find("envelope")) {
        if (!envelope->isString())
            return "hello 'envelope' must be a string";
        const std::string &name = envelope->asString();
        if (name == "stable") {
            hello.envelope = serve::Envelope::Stable;
            hello.envelopeSet = true;
        } else if (name == "full") {
            hello.envelope = serve::Envelope::Full;
            hello.envelopeSet = true;
        } else {
            return "unknown envelope '" + name +
                   "' (try full or stable)";
        }
    }
    if (const json::Value *fp = body.find("defaults");
        fp && fp->isString())
        hello.defaultsFp = fp->asString();
    *out = std::move(hello);
    return "";
}

std::string
checkHelloReply(const std::string &payload,
                const std::string &expectedFp)
{
    json::Value body;
    std::string parseError;
    if (!json::Value::parse(payload, &body, &parseError) ||
        !body.isObject())
        return "hello reply is not a JSON object: " + parseError;
    const json::Value *type = body.find("type");
    if (type && type->isString() && type->asString() == "error") {
        const json::Value *message = body.find("error");
        return message && message->isString()
                   ? message->asString()
                   : std::string("worker rejected the connection");
    }
    if (!type || !type->isString() || type->asString() != "hello")
        return "unexpected hello reply: " + payload;
    const json::Value *proto = body.find("proto");
    if (!proto || !proto->isString() ||
        proto->asString() != kProtocolVersion)
        return "worker speaks an unsupported protocol";
    if (!expectedFp.empty()) {
        const json::Value *fp = body.find("defaults");
        if (!fp || !fp->isString() || fp->asString() != expectedFp)
            return "serving defaults mismatch: worker reports '" +
                   (fp && fp->isString() ? fp->asString()
                                         : std::string("?")) +
                   "', router expects '" + expectedFp +
                   "' (start both with identical --engine/--seed/"
                   "fault flags)";
    }
    return "";
}

} // namespace gopim::cluster
