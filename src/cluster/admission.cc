#include "cluster/admission.hh"

#include "obs/profile.hh"

namespace gopim::cluster {

AdmissionController::AdmissionController(AdmissionConfig config,
                                         obs::MetricsRegistry &registry,
                                         size_t shardCount)
    : config_(config)
{
    inflight_.reserve(shardCount);
    inflightMax_.reserve(shardCount);
    for (size_t i = 0; i < shardCount; ++i) {
        const std::string prefix =
            "cluster.shard" + std::to_string(i);
        inflight_.push_back(&registry.gauge(prefix + ".inflight"));
        inflightMax_.push_back(
            &registry.gauge(prefix + ".inflight.max"));
    }
    shed_ = &registry.counter("cluster.shed.count");
    latency_ = &registry.histogram(
        "cluster.request.latency_us",
        obs::ProfileSpan::latencyBoundsUs());
}

Admit
AdmissionController::decide(size_t shard) const
{
    const int64_t depth = inflight_[shard]->value();
    if (config_.shedAbove != 0 &&
        depth >= static_cast<int64_t>(config_.shedAbove))
        return Admit::Shed;
    if (depth < static_cast<int64_t>(config_.maxInflightPerShard))
        return Admit::Accept;
    // Saturated. Slow *and* saturated sheds; otherwise backpressure.
    if (config_.shedLatencyAboveUs > 0.0) {
        const uint64_t count = latency_->count();
        if (count >= 8 &&
            latency_->sum() / static_cast<double>(count) >
                config_.shedLatencyAboveUs)
            return Admit::Shed;
    }
    return Admit::Block;
}

void
AdmissionController::onDispatch(size_t shard)
{
    inflight_[shard]->add(1);
    inflightMax_[shard]->recordMax(inflight_[shard]->value());
}

void
AdmissionController::onComplete(size_t shard)
{
    inflight_[shard]->add(-1);
}

void
AdmissionController::onShed(size_t shard)
{
    (void)shard;
    shed_->add();
}

void
AdmissionController::observeLatency(double latencyUs)
{
    latency_->observe(latencyUs);
}

void
AdmissionController::resetInflight(size_t shard, int64_t depth)
{
    inflight_[shard]->set(depth);
}

int64_t
AdmissionController::inflight(size_t shard) const
{
    return inflight_[shard]->value();
}

uint64_t
AdmissionController::shedCount() const
{
    return shed_->value();
}

} // namespace gopim::cluster
