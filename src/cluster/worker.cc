#include "cluster/worker.hh"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "cluster/wire.hh"
#include "common/net.hh"
#include "serve/request.hh"

namespace gopim::cluster {

WorkerStats
pumpFramedConnection(serve::Service &service, int fd,
                     const WorkerOptions &options)
{
    WorkerStats stats;

    // --- hello exchange -------------------------------------------
    std::string payload;
    if (net::readFrame(fd, &payload) != net::IoStatus::Ok)
        return stats;
    Hello hello;
    if (std::string problem = parseHello(payload, &hello);
        !problem.empty()) {
        net::writeFrame(
            fd, serve::errorResponseLine(
                    "", {"protocol_mismatch", "", problem}));
        return stats;
    }
    if (!hello.defaultsFp.empty() &&
        hello.defaultsFp != options.defaultsFp) {
        net::writeFrame(
            fd,
            serve::errorResponseLine(
                "", {"defaults_mismatch", "",
                     "serving defaults mismatch: worker '" +
                         options.defaultsFp + "' vs peer '" +
                         hello.defaultsFp +
                         "' (start both with identical --engine/"
                         "--seed/fault flags)"}));
        return stats;
    }
    const serve::Envelope envelope = hello.envelopeSet
                                         ? hello.envelope
                                         : options.defaultEnvelope;
    if (!net::writeFrame(fd, helloOkLine(options.defaultsFp)))
        return stats;

    // --- pipelined request/response pump --------------------------
    // This thread reads frames and submits them (submission order =
    // frame order, which fixes the hit/miss decisions); the writer
    // thread finishes fronts in that same order, so response frames
    // are deterministic per connection for any worker pool size. The
    // window needs no explicit bound: submit() itself blocks on the
    // service's bounded queue.
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<serve::Service::Pending> window;
    bool eof = false;
    bool peerGone = false;

    std::thread writer([&] {
        std::unique_lock<std::mutex> lock(mutex);
        while (true) {
            cv.wait(lock, [&] { return eof || !window.empty(); });
            if (window.empty())
                return; // eof && drained
            serve::Service::Pending pending =
                std::move(window.front());
            window.pop_front();
            lock.unlock();
            const std::string line = service.finish(pending);
            lock.lock();
            if (line.rfind("{\"type\":\"error\"", 0) == 0)
                ++stats.errors;
            // A vanished peer stops the writes but not the drain:
            // every submitted request still completes through the
            // service so its cache/metrics state stays coherent.
            if (!peerGone && !net::writeFrame(fd, line))
                peerGone = true;
        }
    });

    while (true) {
        std::string line;
        if (net::readFrame(fd, &line) != net::IoStatus::Ok)
            break;
        ++stats.requests;
        serve::Service::Pending pending =
            service.submit(line, envelope);
        {
            std::lock_guard<std::mutex> lock(mutex);
            window.push_back(std::move(pending));
            cv.notify_all(); // under the lock: no lost wake-up
        }
    }
    {
        std::lock_guard<std::mutex> lock(mutex);
        eof = true;
        cv.notify_all(); // under the lock: no lost wake-up
    }
    writer.join();
    return stats;
}

WorkerStats
serveFramed(serve::Service &service, int listenFd,
            const WorkerOptions &options,
            const volatile std::sig_atomic_t *stop)
{
    WorkerStats total;
    while (!*stop) {
        const int conn = net::acceptWithTimeout(listenFd, 200);
        if (conn < 0)
            continue;
        net::Fd guard(conn);
        const WorkerStats stats =
            pumpFramedConnection(service, conn, options);
        total.requests += stats.requests;
        total.errors += stats.errors;
    }
    return total;
}

} // namespace gopim::cluster
