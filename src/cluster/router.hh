/**
 * @file
 * ShardRouter: scales the serving layer across worker processes
 * while preserving the single-process byte contract.
 *
 * Determinism argument, in three parts:
 *  1. Placement — every request is parsed/resolved exactly as a
 *     worker would and rendezvous-hashed by its content-addressed
 *     cache key (shards.hh), so repeats of a key always reach the
 *     same shard and each shard's LRU cache behaves exactly like a
 *     single-process cache over its key subset.
 *  2. Envelope — workers speak the Stable envelope (service.hh), so
 *     response bytes are a pure function of (id, key, result) and
 *     never of a shard's private hit/miss history.
 *  3. Ordering — responses come back in request order per shard
 *     connection, and the router re-emits them in client input
 *     order, so the concatenated stream matches a single-process
 *     run line for line.
 *
 * Worker death is survived, not hidden: the router journals every
 * in-flight request per shard, detects death (read/write failure),
 * respawns or reconnects, re-issues the journal in order, and keeps
 * going — the client stream is byte-identical to an undisturbed run
 * because re-simulation of a deterministic request reproduces the
 * same result bytes. A seeded chaos mode (kill a worker every N
 * responses) makes that claim testable end to end.
 */

#ifndef GOPIM_CLUSTER_ROUTER_HH
#define GOPIM_CLUSTER_ROUTER_HH

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/admission.hh"
#include "cluster/shards.hh"
#include "common/net.hh"
#include "common/rng.hh"
#include "obs/metrics.hh"
#include "reram/config.hh"
#include "serve/request.hh"

namespace gopim::cluster {

/** Everything a Router needs at construction. */
struct RouterConfig
{
    std::vector<ShardSpec> shards;
    /**
     * Per-request defaults — MUST match the workers' (the hello
     * fingerprint check enforces it; see wire.hh).
     */
    serve::Request defaults;
    reram::AcceleratorConfig hw =
        reram::AcceleratorConfig::paperDefault();
    AdmissionConfig admission;

    /** Connect retries per (re)connect round and their spacing. */
    uint32_t connectAttempts = 50;
    uint32_t connectDelayMs = 100;
    /** Full respawn+reconnect rounds before a shard is given up. */
    uint32_t restartAttempts = 3;

    /**
     * Chaos harness (spawned shards only): after every
     * `chaosKillEvery` responses emitted, SIGKILL a seeded-random
     * worker, up to `chaosKillCount` times. 0 disables.
     */
    uint32_t chaosKillEvery = 0;
    uint32_t chaosKillCount = 0;
    uint64_t chaosSeed = 1;

    /**
     * Optional export registry. Admission control always records
     * into a registry — this one when given, a private one
     * otherwise — because its decisions read the instruments back.
     */
    std::shared_ptr<obs::MetricsRegistry> metrics;
};

/** The shard router. */
class Router
{
  public:
    explicit Router(RouterConfig config);

    /** Disconnects, SIGTERMs and reaps every spawned worker. */
    ~Router();

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    /**
     * Spawn/connect every shard and exchange hellos. Returns "" on
     * success, else a one-line reason (strict: all shards must come
     * up before traffic flows).
     */
    std::string start();

    struct StreamStats
    {
        uint64_t requests = 0;
        uint64_t errors = 0;
        uint64_t shed = 0;
        uint64_t restarts = 0;
        uint64_t reissued = 0;
        uint64_t chaosKills = 0;
    };

    /**
     * Route JSONL requests from `in` until EOF; one response line
     * per request to `out`, in input order. Responses stream as soon
     * as order allows.
     */
    StreamStats processStream(std::istream &in, std::ostream &out);

    /**
     * Client-facing framed transport: hello exchange on `clientFd`,
     * then one request per frame in, one response per frame out (in
     * order). Returns when the client closes.
     */
    StreamStats processFramed(int clientFd);

    /** Rendezvous placement of a content-addressed key. */
    size_t shardFor(const std::string &key) const;

    /** The registry admission control records into. */
    obs::MetricsRegistry &metrics() { return *metrics_; }

    /** Router stats snapshot ({"type":"stats"} answers). */
    json::Value statsJson() const;

  private:
    /** One client request, in input order. */
    struct Entry
    {
        bool done = false;
        bool isError = false;
        bool routed = false;     ///< reached a shard (latency counts)
        std::string response;    ///< final line, no newline
        std::string id;
        double dispatchedUs = 0.0;
    };
    using EntryPtr = std::shared_ptr<Entry>;

    /** An in-flight request journaled against a shard. */
    struct Journaled
    {
        std::string line; ///< raw client line, re-issued verbatim
        EntryPtr entry;
    };

    struct Shard
    {
        size_t index = 0; ///< position in shards_ / admission gauges
        ShardSpec spec;
        net::Fd fd;
        int64_t pid = -1;
        bool dead = true;  ///< no live connection
        bool gone = false; ///< permanently failed
        std::deque<Journaled> journal;
        uint64_t restarts = 0;
        // Last member on purpose: the reader thread touches journal
        // and dead, which must outlive it under reverse-order
        // destruction (the concurrency-join-order lint rule).
        std::thread reader;
    };

    /** One connect/spawn+hello round; "" on success. */
    std::string connectShard(Shard &shard);
    /** Reader thread: match response frames to journal fronts. */
    void readerLoop(Shard &shard);
    /** Join the reader and drop the connection (does not revive). */
    void disconnectShard(Shard &shard);
    /**
     * Main-thread revival: respawn/reconnect a dead shard and
     * re-issue its journal; marks it gone after restartAttempts
     * failed rounds.
     */
    void reviveShard(Shard &shard, StreamStats *stats);
    /** Fail a gone shard's journal with shard_unavailable errors. */
    void failJournal(Shard &shard);
    /** Revive every dead shard that still owes journal entries. */
    void recoverDeadShards(StreamStats *stats);

    /** Parse/route/admit one line; never blocks on results. */
    EntryPtr dispatchLine(const std::string &line,
                          StreamStats *stats);
    EntryPtr immediateEntry(std::string response, bool isError);

    /** The session pump shared by both client transports. */
    StreamStats
    runSession(const std::function<bool(std::string *)> &nextLine,
               const std::function<void(const std::string &)> &emit);

    RouterConfig config_;
    std::shared_ptr<obs::MetricsRegistry> metrics_;
    AdmissionController admission_;
    std::vector<std::string> names_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::string defaultsFp_;
    Rng chaosRng_;
    uint64_t emitted_ = 0;
    uint64_t chaosKills_ = 0;
    uint64_t restarts_ = 0;
    uint64_t reissued_ = 0;
    uint64_t requests_ = 0;
    uint64_t errors_ = 0;
    bool started_ = false;

    /**
     * One mutex/cv pair guards all cross-thread state (journals,
     * entry done flags, dead flags). Reader threads hold it only to
     * match one frame; contention is negligible next to simulation
     * cost, and a single lock keeps the invariants auditable.
     */
    mutable std::mutex mutex_;
    std::condition_variable cv_;
};

} // namespace gopim::cluster

#endif // GOPIM_CLUSTER_ROUTER_HH
