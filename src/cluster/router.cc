#include "cluster/router.hh"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <thread>
#include <utility>

#include <sys/socket.h>

#include "cluster/proc.hh"
#include "cluster/wire.hh"
#include "common/logging.hh"
#include "obs/profile.hh"

namespace gopim::cluster {

namespace {

bool
isErrorLine(const std::string &line)
{
    return line.rfind("{\"type\":\"error\"", 0) == 0;
}

void
sleepMs(uint32_t ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

} // namespace

Router::Router(RouterConfig config)
    : config_(std::move(config)),
      metrics_(config_.metrics
                   ? config_.metrics
                   : std::make_shared<obs::MetricsRegistry>()),
      admission_(config_.admission, *metrics_,
                 config_.shards.size()),
      chaosRng_(config_.chaosSeed)
{
    shards_.reserve(config_.shards.size());
    for (size_t i = 0; i < config_.shards.size(); ++i) {
        names_.push_back(config_.shards[i].name);
        auto shard = std::make_unique<Shard>();
        shard->index = i;
        shard->spec = config_.shards[i];
        shards_.push_back(std::move(shard));
    }
    defaultsFp_ =
        serve::defaultsFingerprint(config_.defaults, config_.hw);
}

Router::~Router()
{
    for (auto &shardPtr : shards_) {
        Shard &shard = *shardPtr;
        disconnectShard(shard);
        if (shard.pid > 0) {
            killProcess(shard.pid, SIGTERM);
            // Give the worker its accept-loop tick to notice the
            // signal before escalating.
            bool reaped = false;
            for (int i = 0; i < 150 && !reaped; ++i) {
                reaped = reapProcess(shard.pid, false);
                if (!reaped)
                    sleepMs(20);
            }
            if (!reaped) {
                killProcess(shard.pid, SIGKILL);
                reapProcess(shard.pid, true);
            }
            shard.pid = -1;
        }
    }
}

std::string
Router::start()
{
    if (started_)
        return "router already started";
    if (shards_.empty())
        return "no shards configured";
    std::vector<std::string> sorted = names_;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) !=
        sorted.end())
        return "duplicate shard name '" +
               *std::adjacent_find(sorted.begin(), sorted.end()) +
               "'";
    for (auto &shard : shards_) {
        if (std::string problem = connectShard(*shard);
            !problem.empty())
            return "shard '" + shard->spec.name + "': " + problem;
    }
    started_ = true;
    return "";
}

std::string
Router::connectShard(Shard &shard)
{
    std::string host = shard.spec.host;
    uint16_t port = shard.spec.port;

    if (!shard.spec.command.empty()) {
        // Spawn the worker ourselves: hand it an ephemeral port and
        // read the bound port back through its --port-file.
        std::remove(shard.spec.portFile.c_str());
        std::vector<std::string> argv = shard.spec.command;
        argv.push_back("--tcp=0");
        argv.push_back("--port-file=" + shard.spec.portFile);
        std::string spawnError;
        shard.pid = spawnProcess(argv, &spawnError);
        if (shard.pid < 0)
            return spawnError;

        int reported = 0;
        for (uint32_t i = 0; i < 500 && reported == 0; ++i) {
            std::ifstream portIn(shard.spec.portFile);
            if (!(portIn >> reported) || reported <= 0 ||
                reported > 65535) {
                reported = 0;
                sleepMs(20);
            }
        }
        if (reported == 0) {
            killProcess(shard.pid, SIGKILL);
            reapProcess(shard.pid, true);
            shard.pid = -1;
            return "worker did not report a port via " +
                   shard.spec.portFile;
        }
        host = "127.0.0.1";
        port = static_cast<uint16_t>(reported);
    }

    // Any failure from here on must not leak a just-spawned worker:
    // the caller's retry would spawn another one on top of it.
    auto fail = [&](std::string reason) {
        if (shard.pid > 0) {
            killProcess(shard.pid, SIGKILL);
            reapProcess(shard.pid, true);
            shard.pid = -1;
        }
        return reason;
    };

    std::string connectError;
    int fd = -1;
    for (uint32_t attempt = 0;
         attempt < std::max<uint32_t>(1, config_.connectAttempts);
         ++attempt) {
        fd = net::connectTcp(host, port, &connectError);
        if (fd >= 0)
            break;
        sleepMs(config_.connectDelayMs);
    }
    if (fd < 0)
        return fail("connect to " + host + ":" +
                    std::to_string(port) +
                    " failed: " + connectError);
    net::Fd guard(fd);

    if (!net::writeFrame(fd, helloLine("router",
                                       serve::Envelope::Stable,
                                       defaultsFp_)))
        return fail("hello write failed");
    std::string reply;
    std::string readError;
    if (net::readFrame(fd, &reply, &readError) != net::IoStatus::Ok)
        return fail("hello reply missing: " +
                    (readError.empty()
                         ? std::string("connection closed")
                         : readError));
    if (std::string problem = checkHelloReply(reply, defaultsFp_);
        !problem.empty())
        return fail(problem);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        shard.dead = false;
    }
    shard.fd = std::move(guard);
    shard.reader = std::thread([this, &shard] { readerLoop(shard); });
    return "";
}

void
Router::readerLoop(Shard &shard)
{
    const int fd = shard.fd.get();
    while (true) {
        std::string payload;
        const net::IoStatus status = net::readFrame(fd, &payload);
        std::lock_guard<std::mutex> lock(mutex_);
        if (status != net::IoStatus::Ok || shard.journal.empty()) {
            // Connection lost — or a frame with nothing journaled
            // against it, which only a corrupted peer can produce.
            // Either way this connection is done; the session thread
            // revives the shard and re-issues its journal.
            shard.dead = true;
            cv_.notify_all();
            return;
        }
        Journaled front = std::move(shard.journal.front());
        shard.journal.pop_front();
        front.entry->isError = isErrorLine(payload);
        front.entry->response = std::move(payload);
        front.entry->done = true;
        admission_.onComplete(shard.index);
        cv_.notify_all();
    }
}

void
Router::disconnectShard(Shard &shard)
{
    // Wake a reader blocked in readFrame without closing the fd out
    // from under it; the fd is reset only after the join.
    if (shard.fd.valid())
        ::shutdown(shard.fd.get(), SHUT_RDWR);
    if (shard.reader.joinable())
        shard.reader.join();
    shard.fd.reset();
    std::lock_guard<std::mutex> lock(mutex_);
    shard.dead = true;
}

void
Router::failJournal(Shard &shard)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (Journaled &journaled : shard.journal) {
        journaled.entry->response = serve::errorResponseLine(
            journaled.entry->id,
            {"shard_unavailable", "",
             "shard '" + shard.spec.name +
                 "' is unavailable (worker failed permanently)"});
        journaled.entry->isError = true;
        journaled.entry->done = true;
    }
    shard.journal.clear();
    admission_.resetInflight(shard.index, 0);
    cv_.notify_all();
}

void
Router::reviveShard(Shard &shard, StreamStats *stats)
{
    disconnectShard(shard);
    if (shard.pid > 0) {
        // Crashed or chaos-killed: reap the corpse before respawning.
        killProcess(shard.pid, SIGKILL);
        reapProcess(shard.pid, true);
        shard.pid = -1;
    }

    // The journal cannot change while the shard is dead (its reader
    // is joined and only this session thread appends), so a plain
    // snapshot is re-issuable as-is, in order.
    std::vector<std::string> replay;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        replay.reserve(shard.journal.size());
        for (const Journaled &journaled : shard.journal)
            replay.push_back(journaled.line);
    }

    for (uint32_t attempt = 0; attempt < config_.restartAttempts;
         ++attempt) {
        if (std::string problem = connectShard(shard);
            !problem.empty()) {
            warn("cluster: shard '", shard.spec.name,
                 "' restart attempt ", attempt + 1, "/",
                 config_.restartAttempts, " failed: ", problem);
            continue;
        }
        bool reissued = true;
        for (const std::string &line : replay) {
            if (!net::writeFrame(shard.fd.get(), line)) {
                reissued = false;
                break;
            }
        }
        if (!reissued) {
            // Died again mid-replay; the journal is intact. Tear the
            // half-open connection (and its reader thread) down
            // before the next attempt respawns.
            disconnectShard(shard);
            if (shard.pid > 0) {
                killProcess(shard.pid, SIGKILL);
                reapProcess(shard.pid, true);
                shard.pid = -1;
            }
            continue;
        }
        ++shard.restarts;
        ++restarts_;
        reissued_ += replay.size();
        if (stats != nullptr) {
            ++stats->restarts;
            stats->reissued += replay.size();
        }
        metrics_->counter("cluster.restart.count").add();
        metrics_->counter("cluster.reissue.count")
            .add(replay.size());
        inform("cluster: shard '", shard.spec.name,
               "' restarted; re-issued ", replay.size(),
               " in-flight request(s)");
        return;
    }

    warn("cluster: shard '", shard.spec.name, "' gave up after ",
         config_.restartAttempts,
         " restart attempts; failing its in-flight requests");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shard.gone = true;
    }
    failJournal(shard);
}

void
Router::recoverDeadShards(StreamStats *stats)
{
    for (auto &shardPtr : shards_) {
        Shard &shard = *shardPtr;
        bool needsRevival = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            needsRevival =
                shard.dead && !shard.gone && !shard.journal.empty();
        }
        if (needsRevival)
            reviveShard(shard, stats);
    }
}

Router::EntryPtr
Router::immediateEntry(std::string response, bool isError)
{
    auto entry = std::make_shared<Entry>();
    entry->done = true;
    entry->isError = isError;
    entry->response = std::move(response);
    return entry;
}

size_t
Router::shardFor(const std::string &key) const
{
    return rendezvousShard(key, names_);
}

Router::EntryPtr
Router::dispatchLine(const std::string &line, StreamStats *stats)
{
    ++requests_;
    ++stats->requests;
    metrics_->counter("cluster.request.count").add();

    // The parse/validate path below mirrors serve::Service::dispatch
    // byte for byte: a request rejected at the router produces the
    // same error line a worker would have produced.
    json::Value body;
    std::string parseError;
    if (!json::Value::parse(line, &body, &parseError))
        return immediateEntry(
            serve::errorResponseLine(
                "", {"bad_json", "", "invalid JSON: " + parseError}),
            true);

    std::string id;
    if (body.isObject()) {
        if (const json::Value *idField = body.find("id");
            idField && idField->isString())
            id = idField->asString();
        // Stats queries are answered by the router itself — they ask
        // about the serving process, and here that is the cluster.
        if (const json::Value *type = body.find("type");
            type && type->isString() && type->asString() == "stats")
            return immediateEntry(statsJson().dump(), false);
    }

    serve::Request request;
    if (serve::RequestError err =
            parseRequest(body, config_.defaults, &request);
        !err.ok())
        return immediateEntry(serve::errorResponseLine(id, err),
                              true);

    serve::ResolvedRequest resolved;
    if (serve::RequestError err = resolveRequest(request, &resolved);
        !err.ok())
        return immediateEntry(
            serve::errorResponseLine(request.id, err), true);

    const std::string key = cacheKey(resolved, config_.hw);
    const size_t index = shardFor(key);
    Shard &shard = *shards_[index];

    // Admission: shed fast, block on saturation, revive on demand.
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        if (shard.gone) {
            lock.unlock();
            return immediateEntry(
                serve::errorResponseLine(
                    request.id,
                    {"shard_unavailable", "",
                     "shard '" + shard.spec.name +
                         "' is unavailable (worker failed "
                         "permanently)"}),
                true);
        }
        if (shard.dead) {
            lock.unlock();
            reviveShard(shard, stats);
            lock.lock();
            continue;
        }
        const Admit admit = admission_.decide(index);
        if (admit == Admit::Accept)
            break;
        if (admit == Admit::Shed) {
            const int64_t depth = admission_.inflight(index);
            lock.unlock();
            admission_.onShed(index);
            ++stats->shed;
            return immediateEntry(
                serve::errorResponseLine(
                    request.id,
                    {"overloaded", "",
                     "shard '" + shard.spec.name +
                         "' is overloaded (" +
                         std::to_string(depth) +
                         " in flight); request shed"}),
                true);
        }
        cv_.wait_for(lock, std::chrono::milliseconds(20));
    }

    auto entry = std::make_shared<Entry>();
    entry->id = request.id;
    entry->routed = true;
    entry->dispatchedUs = obs::profileNowUs();
    shard.journal.push_back({line, entry});
    admission_.onDispatch(index);
    const int fd = shard.fd.get();
    lock.unlock();

    if (!net::writeFrame(fd, line)) {
        // Death detected on write: the request is journaled, so the
        // revival path (recoverDeadShards / next dispatch to this
        // shard) re-issues it — the entry still completes.
        std::lock_guard<std::mutex> guard(mutex_);
        shard.dead = true;
        cv_.notify_all();
    }
    return entry;
}

Router::StreamStats
Router::runSession(
    const std::function<bool(std::string *)> &nextLine,
    const std::function<void(const std::string &)> &emit)
{
    StreamStats stats;
    std::deque<EntryPtr> window;

    auto emitEntry = [&](const EntryPtr &entry) {
        emit(entry->response);
        ++emitted_;
        if (entry->isError) {
            ++errors_;
            ++stats.errors;
        }
        if (entry->routed)
            admission_.observeLatency(obs::profileNowUs() -
                                      entry->dispatchedUs);
        // Chaos harness: every chaosKillEvery emitted responses,
        // SIGKILL one seeded-random spawned worker — the recovery
        // path must keep the stream byte-identical regardless.
        if (config_.chaosKillEvery != 0 &&
            chaosKills_ < config_.chaosKillCount &&
            emitted_ % config_.chaosKillEvery == 0) {
            std::vector<Shard *> candidates;
            for (auto &shardPtr : shards_)
                if (shardPtr->pid > 0 && !shardPtr->gone)
                    candidates.push_back(shardPtr.get());
            if (!candidates.empty()) {
                Shard &victim = *candidates[chaosRng_.uniformInt(
                    static_cast<uint64_t>(candidates.size()))];
                inform("cluster: chaos kill of shard '",
                       victim.spec.name, "' after ", emitted_,
                       " responses");
                killProcess(victim.pid, SIGKILL);
                ++chaosKills_;
                ++stats.chaosKills;
                metrics_->counter("cluster.chaos.kill.count").add();
            }
        }
    };

    // Flush every response whose turn has come and is done, so output
    // streams in input order while shards keep working.
    auto drainReady = [&] {
        while (true) {
            EntryPtr front;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                if (window.empty() || !window.front()->done)
                    return;
                front = std::move(window.front());
                window.pop_front();
            }
            emitEntry(front);
        }
    };

    std::string line;
    while (nextLine(&line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        window.push_back(dispatchLine(line, &stats));
        drainReady();
        recoverDeadShards(&stats);
    }

    // Drain: emit the rest in order, reviving dead shards as needed.
    while (true) {
        drainReady();
        recoverDeadShards(&stats);
        std::unique_lock<std::mutex> lock(mutex_);
        if (window.empty())
            break;
        if (!window.front()->done)
            cv_.wait_for(lock, std::chrono::milliseconds(50));
    }

    stats.restarts = restarts_;
    stats.reissued = reissued_;
    return stats;
}

Router::StreamStats
Router::processStream(std::istream &in, std::ostream &out)
{
    StreamStats stats = runSession(
        [&in](std::string *line) {
            return static_cast<bool>(std::getline(in, *line));
        },
        [&out](const std::string &response) {
            out << response << '\n';
        });
    out.flush();
    return stats;
}

Router::StreamStats
Router::processFramed(int clientFd)
{
    StreamStats stats;
    std::string payload;
    if (net::readFrame(clientFd, &payload) != net::IoStatus::Ok)
        return stats;
    Hello hello;
    if (std::string problem = parseHello(payload, &hello);
        !problem.empty()) {
        net::writeFrame(clientFd,
                        serve::errorResponseLine(
                            "", {"protocol_mismatch", "", problem}));
        return stats;
    }
    if (hello.envelope != serve::Envelope::Stable) {
        net::writeFrame(
            clientFd,
            serve::errorResponseLine(
                "", {"protocol_mismatch", "",
                     "the router serves only the stable envelope "
                     "(cache counters are per-shard)"}));
        return stats;
    }
    if (!hello.defaultsFp.empty() &&
        hello.defaultsFp != defaultsFp_) {
        net::writeFrame(
            clientFd,
            serve::errorResponseLine(
                "", {"defaults_mismatch", "",
                     "serving defaults mismatch: router '" +
                         defaultsFp_ + "' vs peer '" +
                         hello.defaultsFp +
                         "' (start both with identical --engine/"
                         "--seed/fault flags)"}));
        return stats;
    }
    if (!net::writeFrame(clientFd, helloOkLine(defaultsFp_)))
        return stats;

    bool peerGone = false;
    return runSession(
        [clientFd](std::string *line) {
            return net::readFrame(clientFd, line) ==
                   net::IoStatus::Ok;
        },
        [clientFd, &peerGone](const std::string &response) {
            if (!peerGone && !net::writeFrame(clientFd, response))
                peerGone = true;
        });
}

json::Value
Router::statsJson() const
{
    json::Value inflight = json::Value::array();
    uint64_t journaled = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &shardPtr : shards_) {
            json::Value entry = json::Value::object();
            entry.set("name", shardPtr->spec.name);
            entry.set("inflight",
                      static_cast<int64_t>(
                          shardPtr->journal.size()));
            entry.set("restarts",
                      static_cast<int64_t>(shardPtr->restarts));
            entry.set("gone", shardPtr->gone);
            journaled += shardPtr->journal.size();
            inflight.push(std::move(entry));
        }
    }
    json::Value v = json::Value::object();
    v.set("type", "stats");
    v.set("requests", requests_);
    v.set("errors", errors_);
    v.set("shed", admission_.shedCount());
    v.set("restarts", restarts_);
    v.set("reissued", reissued_);
    v.set("chaos_kills", chaosKills_);
    v.set("inflight", journaled);
    v.set("shards", std::move(inflight));
    return v;
}

} // namespace gopim::cluster
