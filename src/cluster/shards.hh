/**
 * @file
 * Shard identity and placement for the cluster layer. A shard is one
 * gopim_serve worker process; placement uses rendezvous (highest-
 * random-weight) hashing of the content-addressed request key over
 * the set of shard *names*, so the mapping depends only on which
 * shards exist — never on list order, join order, or transport
 * addresses. That is the property that keeps every shard's LRU cache
 * byte-identical to the single-process one: a repeated request key
 * always lands on the same worker.
 */

#ifndef GOPIM_CLUSTER_SHARDS_HH
#define GOPIM_CLUSTER_SHARDS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gopim::cluster {

/** One worker shard the router manages. */
struct ShardSpec
{
    /** Stable rendezvous-hash identity (must be unique). */
    std::string name;
    /** Endpoint of a pre-started worker ("" = spawned locally). */
    std::string host;
    uint16_t port = 0;
    /**
     * argv to spawn the worker ourselves (empty = connect-only).
     * The router appends --tcp=0 and --port-file=<portFile>, reads
     * the bound port back, and respawns with the same argv after a
     * crash.
     */
    std::vector<std::string> command;
    /** Where a spawned worker reports its ephemeral port. */
    std::string portFile;
};

/**
 * Rendezvous hash: the shard whose FNV-1a-chained (name, key) score
 * is highest wins; ties break toward the lexicographically smaller
 * name. Deterministic, order-independent, and minimally disruptive —
 * adding a shard moves only the keys it now wins.
 */
size_t rendezvousShard(const std::string &key,
                       const std::vector<std::string> &names);

/** The per-(shard, key) rendezvous score (exposed for tests). */
uint64_t rendezvousScore(const std::string &name,
                         const std::string &key);

/**
 * "host:port" → ShardSpec named by the endpoint string itself.
 * False with `error` filled on a malformed endpoint.
 */
bool parseEndpoint(const std::string &endpoint, ShardSpec *out,
                   std::string *error);

} // namespace gopim::cluster

#endif // GOPIM_CLUSTER_SHARDS_HH
