/**
 * @file
 * Worker-side framed transport: serves the cluster wire protocol
 * (hello + length-prefixed JSONL frames) over a listening socket on
 * top of a serve::Service. Each connection is pipelined — a reader
 * pushes request frames into the service while a writer emits
 * responses strictly in request order — so one router connection
 * keeps the whole worker pool busy without reordering bytes.
 */

#ifndef GOPIM_CLUSTER_WORKER_HH
#define GOPIM_CLUSTER_WORKER_HH

#include <csignal>
#include <cstdint>
#include <string>

#include "serve/service.hh"

namespace gopim::cluster {

/** Per-worker transport options. */
struct WorkerOptions
{
    /** serve::defaultsFingerprint of this worker's configuration. */
    std::string defaultsFp;
    /** Envelope when the peer's hello does not name one. */
    serve::Envelope defaultEnvelope = serve::Envelope::Full;
};

/** Requests/errors handled on one connection or listener. */
struct WorkerStats
{
    uint64_t requests = 0;
    uint64_t errors = 0;
};

/**
 * Handle one framed connection end to end (hello exchange, then
 * pipelined request/response frames until the peer closes). Exposed
 * separately from serveFramed so tests can drive a socketpair.
 */
WorkerStats pumpFramedConnection(serve::Service &service, int fd,
                                 const WorkerOptions &options);

/**
 * Accept loop: serve framed connections one at a time until *stop
 * becomes nonzero. Does not close `listenFd`.
 */
WorkerStats serveFramed(serve::Service &service, int listenFd,
                        const WorkerOptions &options,
                        const volatile std::sig_atomic_t *stop);

} // namespace gopim::cluster

#endif // GOPIM_CLUSTER_WORKER_HH
