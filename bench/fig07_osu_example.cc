/**
 * @file
 * Figure 7 / Figure 12 reproduction: the eight-vertex worked example
 * showing why selective updating with index-based mapping (OSU) fails
 * to cut the update time, while ISU's interleaved mapping halves it.
 * Vertices V1-V8 have degrees {300, 500, 250, 450, 2, 15, 10, 1};
 * two crossbars hold four vertices each; theta = 50%.
 */

#include <algorithm>
#include <iostream>

#include "common/table.hh"
#include "mapping/selective.hh"
#include "mapping/vertex_map.hh"

int
main()
{
    using namespace gopim;
    using mapping::VertexMapStrategy;

    const std::vector<uint32_t> degrees = {300, 500, 250, 450,
                                           2,   15,  10,  1};
    const auto important = mapping::selectImportant(degrees, 0.5);

    Table sel("Figure 7: selected vertices (theta = 50%)",
              {"vertex", "degree", "selected"});
    for (size_t v = 0; v < degrees.size(); ++v) {
        sel.row()
            .cell("V" + std::to_string(v + 1))
            .cell(static_cast<uint64_t>(degrees[v]))
            .cell(important[v] ? "yes" : "no");
    }
    sel.print(std::cout);

    Table table("Update cycles (2 crossbars x 4 rows)",
                {"scheme", "crossbar 1 writes", "crossbar 2 writes",
                 "update cycles"});

    auto report = [&](const std::string &name,
                      VertexMapStrategy strategy,
                      const std::vector<bool> &mask) {
        const auto assignment =
            mapping::mapVertices(degrees, 4, strategy);
        const auto writes = mapping::hotEpochWrites(assignment, mask);
        table.row()
            .cell(name)
            .cell(writes[0])
            .cell(writes[1])
            .cell(*std::max_element(writes.begin(), writes.end()));
    };

    const std::vector<bool> all(8, true);
    report("no sparsification (index)", VertexMapStrategy::IndexBased,
           all);
    report("OSU (index + selective)", VertexMapStrategy::IndexBased,
           important);
    report("ISU (interleaved + selective)",
           VertexMapStrategy::Interleaved, important);
    table.print(std::cout);

    std::cout << "\nPaper: full update 4 cycles; OSU still 4 cycles "
                 "(crossbar 1 gets no relief); ISU 2 cycles.\n";
    return 0;
}
