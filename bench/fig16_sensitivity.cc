/**
 * @file
 * Figure 16 reproduction: (a) accuracy vs update threshold theta on a
 * dense graph (ddi-like), (b) the same on a sparse graph (Cora-like),
 * and (c) speedup vs micro-batch size.
 *
 * The accuracy studies run the functional GCN trainer on synthetic
 * planted-label graphs matching each dataset's density class (see
 * DESIGN.md §1). The paper finds < 1% accuracy drop down to theta =
 * 50% on dense graphs but only down to 80% on sparse ones.
 */

#include <iostream>

#include "common/flags.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "core/harness.hh"
#include "core/options.hh"
#include "gcn/trainer.hh"
#include "gcn/workload.hh"
#include "graph/generators.hh"

namespace {

using namespace gopim;

void
thetaSweep(const std::string &title, const graph::LabeledGraph &data,
           uint32_t epochs)
{
    gcn::TrainerConfig cfg;
    cfg.epochs = epochs;
    // Narrow features keep the synthetic task off the accuracy
    // ceiling so the theta sensitivity is visible.
    cfg.featureDim = 8;
    cfg.hiddenChannels = 32;
    gcn::FunctionalTrainer trainer(data, cfg);

    const auto baseline = trainer.train({});
    Table table(title, {"theta", "test acc %", "drop vs full %"});
    table.row()
        .cell("100% (full)")
        .cell(baseline.bestTestAccuracy * 100.0, 2)
        .cell(0.0, 2);
    for (double theta : {0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2}) {
        const auto result = trainer.train(
            {.enabled = true, .theta = theta, .coldPeriod = 20});
        table.row()
            .cell(std::to_string(static_cast<int>(theta * 100)) + "%")
            .cell(result.bestTestAccuracy * 100.0, 2)
            .cell((baseline.bestTestAccuracy -
                   result.bestTestAccuracy) *
                      100.0,
                  2);
    }
    table.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags("fig16_sensitivity",
                "Fig. 16 theta and micro-batch sensitivity");
    core::addSimFlags(flags);
    if (!flags.parse(argc, argv))
        return 0;

    Rng rng(2024);

    // (a) Dense graph: ddi-scale density (avg degree well above 8).
    const auto dense =
        graph::degreeCorrectedPartition(1200, 6, 60.0, 2.1, 0.35, rng);
    thetaSweep("Figure 16(a): accuracy vs theta, dense graph "
               "(ddi-class, avg degree ~60)",
               dense, 80);
    std::cout << "Paper: dense graphs tolerate theta down to "
                 "40-50% with < 1% loss.\n\n";

    // (b) Sparse graph: Cora-scale density (avg degree ~4).
    const auto sparse =
        graph::degreeCorrectedPartition(1500, 6, 4.0, 2.1, 0.35, rng);
    thetaSweep("Figure 16(b): accuracy vs theta, sparse graph "
               "(Cora-class, avg degree ~4)",
               sparse, 80);
    std::cout << "Paper: sparse graphs need theta >= 70-80% to stay "
                 "within 1%.\n\n";

    // (c) Speedup vs micro-batch size.
    core::ComparisonHarness harness(
        reram::AcceleratorConfig::paperDefault(),
        core::simContextFromFlags(flags));
    Table batch("Figure 16(c): GoPIM speedup over Serial vs "
                "micro-batch size (ddi)",
                {"micro-batch", "speedup"});
    for (uint32_t mb : {16u, 32u, 64u, 128u, 256u}) {
        auto workload = gcn::Workload::paperDefault("ddi");
        workload.microBatchSize = mb;
        const auto profile =
            gcn::VertexProfile::build(workload.dataset, workload.seed);
        batch.row()
            .cell(static_cast<uint64_t>(mb))
            .cell(harness
                      .runOne(core::SystemKind::GoPim, workload,
                              profile)
                      .speedupOver(harness.runOne(
                          core::SystemKind::Serial, workload,
                          profile)),
                  1);
    }
    batch.print(std::cout);
    std::cout << "\nPaper: speedup grows with the micro-batch size.\n";
    return 0;
}
