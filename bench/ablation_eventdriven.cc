/**
 * @file
 * Event-driven vs closed-form validation and robustness ablation:
 * (a) the discrete-event simulator reproduces the Eq. 6 closed-form
 * makespan on the real GoPIM stage times of every dataset (the
 * modeling assumption behind the whole evaluation);
 * (b) bounded inter-stage buffers: how small the on-chip queues can
 * get before backpressure erodes the pipeline;
 * (c) ReRAM write-verify retries: stochastic service-time jitter and
 * its makespan cost at increasing failure rates.
 */

#include <iostream>

#include "common/flags.hh"
#include "common/table.hh"
#include "core/accelerator.hh"
#include "core/harness.hh"
#include "core/options.hh"
#include "core/systems.hh"
#include "gcn/workload.hh"
#include "graph/datasets.hh"
#include "pipeline/schedule.hh"
#include "sim/pipeline_sim.hh"

namespace {

using namespace gopim;

std::vector<sim::StationConfig>
stationsFrom(const std::vector<double> &stageTimes)
{
    std::vector<sim::StationConfig> stations;
    for (double t : stageTimes)
        stations.push_back({.serviceTimeNs = t});
    return stations;
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags("ablation_eventdriven",
                "Event-driven vs closed-form validation and "
                "robustness ablation");
    core::addSimFlags(flags);
    if (!flags.parse(argc, argv))
        return 0;

    core::ComparisonHarness harness(
        reram::AcceleratorConfig::paperDefault(),
        core::simContextFromFlags(flags));

    // (a) Validation on every dataset's GoPIM stage times.
    {
        Table table("Event-driven vs closed-form makespan "
                    "(GoPIM stage times, one epoch)",
                    {"dataset", "closed form", "event-driven",
                     "relative diff", "events"});
        for (const auto &spec :
             graph::DatasetCatalog::figure13Set()) {
            const auto workload =
                gcn::Workload::paperDefault(spec.name);
            const auto run =
                harness.runOne(core::SystemKind::GoPim, workload);
            const uint32_t b = workload.microBatchesPerEpoch();

            const double closed =
                pipeline::pipelinedMakespanNs(run.stageTimesNs, b);
            const auto simmed = sim::simulatePipeline(
                stationsFrom(run.stageTimesNs), b);
            table.row()
                .cell(spec.name)
                .cell(formatTimeNs(closed))
                .cell(formatTimeNs(simmed.makespanNs))
                .cell(std::abs(simmed.makespanNs - closed) /
                          closed,
                      9)
                .cell(simmed.eventsProcessed);
        }
        table.print(std::cout);
        std::cout << "The closed form is exact for the FIFO "
                     "unbounded-buffer pipeline; the event-driven "
                     "engine confirms it to machine precision.\n\n";
    }

    const auto workload = gcn::Workload::paperDefault("ddi");
    const auto gopim =
        harness.runOne(core::SystemKind::GoPim, workload);
    const uint32_t b = workload.microBatchesPerEpoch();

    // (b) Buffer-capacity sweep.
    {
        Table table("Inter-stage buffer sensitivity (ddi, GoPIM "
                    "stage times)",
                    {"buffer slots", "makespan", "slowdown %",
                     "max blocked time"});
        const double unbounded =
            sim::simulatePipeline(stationsFrom(gopim.stageTimesNs), b)
                .makespanNs;
        for (uint32_t slots : {0u, 1u, 2u, 4u, 16u}) {
            auto stations = stationsFrom(gopim.stageTimesNs);
            for (auto &s : stations)
                s.inputBuffer = slots;
            const auto result =
                sim::simulatePipeline(stations, b);
            double maxBlocked = 0.0;
            for (double blocked : result.blockedNs)
                maxBlocked = std::max(maxBlocked, blocked);
            table.row()
                .cell(static_cast<uint64_t>(slots))
                .cell(formatTimeNs(result.makespanNs))
                .cell((result.makespanNs / unbounded - 1.0) * 100.0,
                      2)
                .cell(formatTimeNs(maxBlocked));
        }
        table.print(std::cout);
        std::cout << "GoPIM's balanced stage times keep even tiny "
                     "buffers almost bubble-free — the architecture's "
                     "128 KB global buffer is comfortably enough.\n\n";
    }

    // (c) Write-verify retry sweep.
    {
        Table table("ReRAM write-verify retry jitter (ddi, writes "
                    "~30% of AG stage time)",
                    {"retry probability", "mean makespan",
                     "slowdown %"});
        const auto stations = stationsFrom(gopim.stageTimesNs);
        const double clean =
            sim::simulatePipeline(stations, b).makespanNs;
        for (double p : {0.0, 0.01, 0.05, 0.10, 0.20}) {
            const auto sampler =
                sim::makeWriteRetrySampler(stations, p, 0.3);
            double total = 0.0;
            const int trials = 5;
            for (int t = 0; t < trials; ++t)
                total += sim::simulatePipeline(
                             stations, b, sampler,
                             static_cast<uint64_t>(t) + 1)
                             .makespanNs;
            const double mean = total / trials;
            table.row()
                .cell(p, 2)
                .cell(formatTimeNs(mean))
                .cell((mean / clean - 1.0) * 100.0, 2);
        }
        table.print(std::cout);
        std::cout << "Write-verify failures lengthen the update "
                     "portion geometrically; the pipeline absorbs "
                     "small rates but degrades past ~10%.\n";
    }
    return 0;
}
