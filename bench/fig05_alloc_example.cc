/**
 * @file
 * Figure 5 reproduction: the two-stage pedagogical example comparing
 * unused-crossbar allocation methods. Stage times are 1 and 6 units,
 * two micro-batches per batch, four batches, three spare crossbars.
 * The paper's timeline totals: (a) no replicas = 52 units; (b)
 * ReGraphX's 1:2 split = 18 units (-34); (c) all three replicas on
 * stage 2 = 16 units (-36).
 */

#include <iostream>

#include "alloc/allocator.hh"
#include "alloc/basic.hh"
#include "alloc/greedy_heap.hh"
#include "common/table.hh"
#include "pipeline/schedule.hh"

int
main()
{
    using namespace gopim;
    using pipeline::StageType;

    alloc::AllocationProblem problem;
    problem.stages = {{StageType::Combination, 1},
                      {StageType::Aggregation, 1}};
    problem.scalableTimesNs = {1.0, 6.0};
    problem.fixedTimesNs = {0.0, 0.0};
    problem.crossbarsPerReplica = {1, 1};
    problem.spareCrossbars = 3;
    problem.numMicroBatches = 2;

    const uint32_t batches = 4;

    auto makespan = [&](const std::vector<uint32_t> &replicas) {
        const auto times = alloc::stageTimesNs(problem, replicas);
        return pipeline::scheduleIntraBatchOnly(times, 2, batches)
            .makespanNs;
    };

    const double base = makespan({1, 1});

    Table table("Figure 5: unused crossbar resource allocation methods "
                "(2 stages, times 1:6, 3 spare crossbars)",
                {"method", "replicas", "total time", "saved",
                 "improvement"});

    auto report = [&](const std::string &name,
                      const std::vector<uint32_t> &replicas) {
        const double t = makespan(replicas);
        table.row()
            .cell(name)
            .cell("[" + std::to_string(replicas[0]) + ", " +
                  std::to_string(replicas[1]) + "]")
            .cell(t, 0)
            .cell(base - t, 0)
            .cell((base - t) / base * 100.0, 1);
    };

    report("(a) no replicas", {1, 1});

    const auto regraphx =
        alloc::FixedRatioAllocator(1.0, 2.0).allocate(problem);
    report("(b) ReGraphX 1:2", regraphx.replicas);

    const auto gopim =
        alloc::GreedyHeapAllocator(0, 0.0).allocate(problem);
    report("(c) GoPIM greedy", gopim.replicas);

    table.print(std::cout);
    std::cout << "\nPaper timeline: (a) 52 units, (b) -34 units "
                 "(~65.4% improvement), (c) -36 units (~69.2%).\n";
    return 0;
}
