/**
 * @file
 * Workload-family ablation: how the replica allocators rank across
 * the workload families the substrate now serves — GCN training, GNN
 * inference under each SpMM partitioning strategy, and the im2col CNN
 * kernel. Training is dominated by replica-divisible stage time, so
 * allocation quality decides the makespan; the inference families add
 * fixed (unscalable) merge/straggler terms that compress the gap —
 * this bench quantifies both effects on one grid.
 *
 * Every cell runs three times: live on the event engine, again with
 * an isa::StreamRecorder attached (encoding the bundle to trace
 * bytes), and once more replayed from the decoded bytes through
 * sim::ReplayEngine. Replayed cells are asserted bit-identical to
 * their live cells, so the bench doubles as the end-to-end trace
 * check for all three families. --json-out (default
 * BENCH_workloads.json) records the full grid.
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "alloc/annealing.hh"
#include "alloc/basic.hh"
#include "alloc/greedy_heap.hh"
#include "common/flags.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/options.hh"
#include "core/systems.hh"
#include "isa/trace_io.hh"
#include "obs/profile.hh"
#include "sim/replay.hh"
#include "workload/cnn_infer.hh"
#include "workload/runner.hh"

using namespace gopim;

namespace {

struct AllocatorEntry
{
    std::string name;
    std::shared_ptr<const alloc::Allocator> allocator;
};

bool
bitIdentical(const core::RunResult &a, const core::RunResult &b)
{
    return a.makespanNs == b.makespanNs && a.energyPj == b.energyPj &&
           a.eventsProcessed == b.eventsProcessed &&
           a.idleFraction == b.idleFraction &&
           a.blockedNs == b.blockedNs;
}

std::vector<core::RunResult>
runGrid(const std::vector<workload::WorkloadSpec> &specs,
        const std::vector<AllocatorEntry> &allocators,
        const sim::SimContext &simCtx,
        const reram::AcceleratorConfig &hw)
{
    std::vector<core::RunResult> flat;
    for (const auto &spec : specs) {
        for (const auto &entry : allocators) {
            core::SystemConfig system =
                core::makeSystem(core::SystemKind::GoPim);
            system.name = entry.name;
            system.allocator = entry.allocator;
            system.sim = simCtx;
            flat.push_back(workload::runFamily(spec, system, hw));
        }
    }
    return flat;
}

std::string
specLabel(const workload::WorkloadSpec &spec)
{
    std::string label = workload::toString(spec.family);
    if (spec.family == workload::FamilyKind::GnnInfer)
        label += "/" + workload::toString(spec.partition);
    return label + " (" + spec.dataset + ")";
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags("ablation_workloads",
                "allocator ranking across the workload families "
                "(gcn-train, gnn-infer per partitioning, cnn-infer) "
                "with a recorded-trace replay parity check");
    flags.addString("dataset", "Cora",
                    "catalog graph for the GNN/GCN cells");
    flags.addString("cnn-preset", workload::defaultCnnPreset(),
                    "CNN preset for the cnn-infer cell (" +
                        workload::cnnPresetNameList() + ")");
    flags.addInt("anneal-iters", 5000,
                 "annealing iterations (quality/runtime knob)");
    flags.addInt("tiles", 192,
                 "chip tiles; the default is deliberately far below "
                 "the paper's 65536 so replicas are contended and "
                 "the allocators actually rank (0 = paper default)");
    core::addSimFlags(flags);
    core::addJsonOutFlag(flags, "BENCH_workloads.json");
    if (!flags.parse(argc, argv))
        return 0;

    const std::string dataset = flags.getString("dataset");
    const std::string preset = flags.getString("cnn-preset");
    if (!workload::findCnnPreset(preset))
        fatal("unknown --cnn-preset '", preset, "' (try ",
              workload::cnnPresetNameList(), ")");

    // One spec per family cell; gnn-infer fans out over the three
    // partitioning strategies.
    std::vector<workload::WorkloadSpec> specs;
    {
        workload::WorkloadSpec spec;
        spec.dataset = dataset;
        spec.family = workload::FamilyKind::GcnTrain;
        specs.push_back(spec);
        spec.family = workload::FamilyKind::GnnInfer;
        for (const auto &info : workload::partitionRegistry()) {
            spec.partition = info.kind;
            specs.push_back(spec);
        }
        spec.family = workload::FamilyKind::CnnInfer;
        spec.dataset = preset;
        spec.partition = workload::Partitioning::RowSplit;
        specs.push_back(spec);
    }

    std::vector<AllocatorEntry> allocators;
    allocators.push_back(
        {"GreedyHeap", std::make_shared<alloc::GreedyHeapAllocator>()});
    allocators.push_back(
        {"Annealing",
         std::make_shared<alloc::AnnealingAllocator>(
             alloc::AnnealingParams{
                 .iterations = static_cast<uint32_t>(
                     flags.getInt("anneal-iters"))})});
    allocators.push_back(
        {"FixedRatio",
         std::make_shared<alloc::FixedRatioAllocator>(1.0, 2.0)});
    allocators.push_back(
        {"SpaceProp",
         std::make_shared<alloc::SpaceProportionalAllocator>()});

    // The event engine is the replay subject, whatever --engine says.
    sim::SimContext base = core::simContextFromFlags(flags);
    base.engine = sim::EngineKind::EventDriven;
    base.engineOverride = nullptr;
    auto hw = reram::AcceleratorConfig::paperDefault();
    if (const int64_t tiles = flags.getInt("tiles"); tiles > 0)
        hw.chip.tilesPerChip = static_cast<uint32_t>(tiles);
    hw.validate();

    // Pass 1: live event-driven runs.
    const double eventStart = obs::profileNowUs();
    const auto eventRuns = runGrid(specs, allocators, base, hw);
    const double eventUs = obs::profileNowUs() - eventStart;

    // Pass 2: record every stream and encode the bundle to bytes.
    sim::SimContext recording = base;
    recording.isaRecorder = std::make_shared<isa::StreamRecorder>();
    runGrid(specs, allocators, recording, hw);
    const isa::TraceBundle bundle = recording.isaRecorder->bundle();
    const std::string traceBytes = isa::encodeBundle(bundle);

    // Pass 3: replay the whole grid from the decoded bytes.
    isa::TraceBundle decoded;
    std::string error;
    if (!isa::decodeBundle(traceBytes, &decoded, &error))
        fatal("trace round trip failed: ", error);
    sim::SimContext replaying = base;
    replaying.engine = sim::EngineKind::Replay;
    replaying.engineOverride =
        std::make_shared<sim::ReplayEngine>(std::move(decoded));
    const auto replayRuns = runGrid(specs, allocators, replaying, hw);

    if (replayRuns.size() != eventRuns.size())
        fatal("replay grid size mismatch");
    for (size_t i = 0; i < eventRuns.size(); ++i)
        if (!bitIdentical(eventRuns[i], replayRuns[i]))
            fatal("replay diverged from the event engine on ",
                  eventRuns[i].systemName, " / ",
                  eventRuns[i].datasetName);
    inform("all ", eventRuns.size(),
           " replayed runs bit-identical to the event engine across ",
           specs.size(), " workload cells");

    std::vector<std::string> headers = {"workload"};
    for (const auto &entry : allocators)
        headers.push_back(entry.name);
    Table table("Workload families: makespan per allocator, "
                "normalized to " +
                    allocators.front().name +
                    " (above 1.00 = slower)",
                headers);
    json::Value grid = json::Value::array();
    for (size_t s = 0; s < specs.size(); ++s) {
        auto &row = table.row().cell(specLabel(specs[s]));
        const double reference =
            eventRuns[s * allocators.size()].makespanNs;
        for (size_t a = 0; a < allocators.size(); ++a) {
            const auto &run = eventRuns[s * allocators.size() + a];
            row.cell(reference > 0.0 ? run.makespanNs / reference
                                     : 0.0,
                     3);
            json::Value cell = json::Value::object();
            cell.set("workload", workload::toString(specs[s].family));
            if (specs[s].family == workload::FamilyKind::GnnInfer)
                cell.set("partition",
                         workload::toString(specs[s].partition));
            cell.set("dataset", specs[s].dataset);
            cell.set("allocator", allocators[a].name);
            cell.set("makespan_ns", run.makespanNs);
            cell.set("energy_pj", run.energyPj);
            cell.set("vs_reference",
                     reference > 0.0 ? run.makespanNs / reference
                                     : 0.0);
            grid.push(std::move(cell));
        }
    }
    table.print(std::cout);
    std::cout << "\nTraining rewards allocation quality; the "
                 "inference families' fixed merge/straggler terms "
                 "compress the allocator gap. Replay re-timed every "
                 "cell from "
              << traceBytes.size() << " trace bytes ("
              << bundle.streams.size()
              << " unique streams) with zero divergence.\n";

    if (const std::string path = flags.getString("json-out");
        !path.empty()) {
        json::Value doc = json::Value::object();
        doc.set("bench", "ablation_workloads");
        doc.set("dataset", dataset);
        doc.set("cnn_preset", preset);
        doc.set("runs", static_cast<double>(eventRuns.size()));
        doc.set("event_ms", eventUs / 1000.0);
        doc.set("bit_identical", true);
        doc.set("trace_bytes",
                static_cast<double>(traceBytes.size()));
        doc.set("trace_streams",
                static_cast<double>(bundle.streams.size()));
        doc.set("grid", std::move(grid));
        std::ofstream out(path);
        if (!out)
            fatal("cannot open --json-out file ", path);
        out << doc.dumpIndented() << '\n';
        inform("wrote workload ablation to ", path);
    }
    core::writeMetricsIfRequested(flags, base);
    return 0;
}
