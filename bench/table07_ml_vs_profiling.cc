/**
 * @file
 * Table VII reproduction: speedups (normalized to Serial) when the
 * replica allocator is driven by the ML predictor's estimated stage
 * times versus exact profiled times, plus the decision-cost
 * comparison. The paper reports a worst-case gap of 4.3% and an
 * average 94% reduction in time overhead for the ML approach.
 */

#include <chrono>
#include <iostream>

#include "common/flags.hh"
#include "common/table.hh"
#include "core/accelerator.hh"
#include "core/harness.hh"
#include "core/options.hh"
#include "core/systems.hh"
#include "gcn/time_model.hh"
#include "gcn/workload.hh"
#include "graph/datasets.hh"
#include "predictor/datagen.hh"
#include "predictor/predictor.hh"

int
main(int argc, char **argv)
{
    using namespace gopim;

    Flags flags("table07_ml_vs_profiling",
                "Table VII: ML-predicted vs profiled stage times");
    core::addSimFlags(flags);
    if (!flags.parse(argc, argv))
        return 0;

    core::ComparisonHarness harness(
        reram::AcceleratorConfig::paperDefault(),
        core::simContextFromFlags(flags));
    const gcn::StageTimeModel model(harness.hardware());

    // Train the predictor once on randomized workloads (the paper
    // trains on five datasets and tests on the held-out one).
    std::cout << "training the MLP time predictor..." << std::flush;
    const auto t0 = std::chrono::steady_clock::now();
    const auto samples = predictor::generateSamples(model, 550, 33);
    predictor::TimePredictor timePredictor(
        ml::MlpParams{.hiddenLayers = {256}, .epochs = 400});
    timePredictor.fit(samples);
    const auto t1 = std::chrono::steady_clock::now();
    const double trainSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    std::cout << " done (" << trainSeconds << " s)\n\n";

    predictor::ProfilingPredictor profiling(model);

    Table table("Table VII: speedup over Serial, ML-predicted vs "
                "profiled stage times",
                {"dataset", "ML", "Profiling", "gap %",
                 "profiling cost (s)"});

    const char *paperMl[] = {"3454.31", "36.82", "10.18", "71.64",
                             "64.78"};
    int idx = 0;
    for (const auto &spec : graph::DatasetCatalog::figure13Set()) {
        const auto workload = gcn::Workload::paperDefault(spec.name);
        const auto profile =
            gcn::VertexProfile::build(workload.dataset, workload.seed);

        auto gopimSystem = core::makeSystem(core::SystemKind::GoPim);
        gopimSystem.sim = harness.simContext();
        core::Accelerator gopimAccel(harness.hardware(), gopimSystem);
        const auto serial =
            harness.runOne(core::SystemKind::Serial, workload, profile);

        const auto mlTimes =
            timePredictor.predictAllStageTimesNs(workload);
        const auto profiledTimes =
            profiling.predictAllStageTimesNs(workload);

        const auto mlRun =
            gopimAccel.runWithEstimates(workload, profile, mlTimes);
        const auto profiledRun = gopimAccel.runWithEstimates(
            workload, profile, profiledTimes);

        const double mlSpeedup = mlRun.speedupOver(serial);
        const double profSpeedup = profiledRun.speedupOver(serial);
        table.row()
            .cell(spec.name + " (paper ML " + paperMl[idx++] + ")")
            .cell(mlSpeedup, 2)
            .cell(profSpeedup, 2)
            .cell((profSpeedup - mlSpeedup) / profSpeedup * 100.0, 2)
            .cell(profiling.profilingCostSeconds(workload), 1);
    }
    table.print(std::cout);

    std::cout << "\nML prediction cost after training: milliseconds "
                 "per workload; profiling costs the full 30-epoch "
                 "run shown above (paper: 1688.9 s on ppa, ML cuts "
                 "overhead by ~94% on average, max speedup gap "
                 "4.3%).\n";
    return 0;
}
