/**
 * @file
 * Device non-ideality ablation: programming error of the ReRAM cells
 * (conductance variation + level quantization) and its effect on the
 * analog MVM outputs the Combination/Aggregation stages compute. The
 * paper assumes 2-bit cells with 2 slices per 16-bit value; this
 * bench quantifies how much headroom that configuration leaves.
 */

#include <cmath>
#include <iostream>

#include "common/flags.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "core/options.hh"
#include "reram/config.hh"
#include "gcn/trainer.hh"
#include "graph/generators.hh"
#include "reram/noise.hh"
#include "tensor/init.hh"
#include "tensor/ops.hh"

using namespace gopim;
using reram::mvmOutputError;

int
main(int argc, char **argv)
{
    Flags flags("ablation_device_noise",
                "Device non-ideality ablation: programming error "
                "and training accuracy");
    core::addSimFlags(flags);
    if (!flags.parse(argc, argv))
        return 0;

    const auto cfg = reram::AcceleratorConfig::paperDefault();
    Rng rng(3);

    // A Combination-shaped workload: 64-vertex micro-batch through a
    // 256x256 weight matrix.
    const auto weights =
        tensor::xavierUniform(256, 256, rng);
    const auto inputs = tensor::uniformInit(64, 256, -1.0f, 1.0f, rng);

    // (a) Programming RMSE across variation levels.
    {
        Table table("Cell programming error",
                    {"sigma", "levels", "programming RMSE",
                     "MVM output error"});
        for (double sigma : {0.0, 0.01, 0.03, 0.05, 0.10, 0.20}) {
            for (uint32_t levels :
                 {0u, reram::DeviceNoiseModel::levelsFor(cfg)}) {
                reram::NoiseParams params;
                params.conductanceSigma = sigma;
                params.quantLevels = levels;
                reram::DeviceNoiseModel rmseModel(params);
                reram::DeviceNoiseModel mvmModel(params);
                table.row()
                    .cell(sigma, 2)
                    .cell(levels == 0 ? std::string("ideal")
                                      : std::to_string(levels))
                    .cell(rmseModel.programmingRmse(weights), 4)
                    .cell(mvmOutputError(inputs, weights,
                                         mvmModel.program(weights)),
                          4);
            }
        }
        table.print(std::cout);
        std::cout << "The paper's 16-level cells add ~7% output "
                     "error on their own; device variation "
                     "dominates beyond sigma ~3%.\n\n";
    }

    // (b) Quantization-only sweep: how many levels does GCN-grade
    // MVM need?
    {
        Table table("Quantization-only MVM error",
                    {"levels", "bits", "MVM output error"});
        for (uint32_t bits : {2u, 3u, 4u, 6u, 8u}) {
            reram::DeviceNoiseModel model(
                {.quantLevels = 1u << bits});
            table.row()
                .cell(static_cast<uint64_t>(1u << bits))
                .cell(static_cast<uint64_t>(bits))
                .cell(mvmOutputError(inputs, weights,
                                     model.program(weights)),
                      4);
        }
        table.print(std::cout);
        std::cout << "Error halves per extra bit, the expected "
                     "6 dB/bit staircase; 4 bits (the paper's "
                     "2 cells x 2 bits) sits at ~7%.\n\n";
    }

    // (c) End-to-end training accuracy under device variation: the
    // functional trainer sees the crossbars' noisy weight image in
    // every forward/backward pass.
    {
        const auto data = graph::degreeCorrectedPartition(
            800, 4, 20.0, 2.1, 0.2, rng);
        Table table("GCN training accuracy under conductance "
                    "variation (synthetic 4-class graph)",
                    {"sigma", "best test acc %", "drop vs ideal %"});
        double ideal = 0.0;
        for (double sigma : {0.0, 0.03, 0.10, 0.30}) {
            gcn::TrainerConfig tc;
            tc.epochs = 60;
            tc.featureDim = 16;
            tc.hiddenChannels = 32;
            tc.weightNoiseSigma = sigma;
            gcn::FunctionalTrainer trainer(data, tc);
            const double acc =
                trainer.train({}).bestTestAccuracy * 100.0;
            if (sigma == 0.0)
                ideal = acc;
            table.row()
                .cell(sigma, 2)
                .cell(acc, 2)
                .cell(ideal - acc, 2);
        }
        table.print(std::cout);
        std::cout << "GCN training tolerates realistic (3-10%) "
                     "device variation — noise acts like weak "
                     "regularization until it swamps the signal.\n";
    }
    return 0;
}
