/**
 * @file
 * ISA replay baseline: what lowering + binary tracing + replay cost
 * relative to live event-driven scheduling, on the Fig. 13 systems.
 *
 * Three timed passes over the same (system x dataset) grid:
 *   event      the live event-driven engine, no recording
 *   record     event-driven with an isa::StreamRecorder attached and
 *              the bundle encoded to trace bytes (the
 *              --isa-trace-out path)
 *   replay     every run re-timed from the decoded bundle through
 *              sim::ReplayEngine (the --isa-trace-in path)
 *
 * Every replayed cell is asserted bit-identical to its event cell —
 * this bench doubles as an end-to-end check of the trace round trip
 * at paper scale. --json-out (default BENCH_isa_replay.json) records
 * wall-clock per pass, trace size, and per-stream command counts.
 */

#include <fstream>
#include <iostream>
#include <vector>

#include "common/flags.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/harness.hh"
#include "core/options.hh"
#include "core/systems.hh"
#include "gcn/workload.hh"
#include "isa/trace_io.hh"
#include "obs/profile.hh"
#include "sim/replay.hh"

using namespace gopim;

namespace {

std::vector<core::RunResult>
runGridFlat(const core::ComparisonHarness &harness,
            const std::vector<core::SystemKind> &systems,
            const std::vector<std::string> &datasets)
{
    std::vector<core::RunResult> flat;
    for (const auto &row : harness.runGrid(systems, datasets))
        for (const auto &result : row.results)
            flat.push_back(result);
    return flat;
}

bool
bitIdentical(const core::RunResult &a, const core::RunResult &b)
{
    return a.makespanNs == b.makespanNs && a.energyPj == b.energyPj &&
           a.eventsProcessed == b.eventsProcessed &&
           a.idleFraction == b.idleFraction &&
           a.blockedNs == b.blockedNs;
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags("ablation_isa_replay",
                "lowering/trace/replay cost baseline vs the live "
                "event-driven engine on the Fig. 13 grid");
    flags.addString("datasets", "Cora,ddi",
                    "comma-separated catalog datasets");
    core::addSimFlags(flags);
    core::addJsonOutFlag(flags, "BENCH_isa_replay.json");
    if (!flags.parse(argc, argv))
        return 0;

    std::vector<std::string> datasets;
    {
        std::string rest = flags.getString("datasets");
        while (!rest.empty()) {
            const size_t comma = rest.find(',');
            datasets.push_back(rest.substr(0, comma));
            rest = comma == std::string::npos
                       ? ""
                       : rest.substr(comma + 1);
        }
    }
    const auto systems = core::figure13Systems();

    // The event engine is the subject here, whatever --engine says;
    // replay parity against the closed form would be vacuous.
    sim::SimContext base = core::simContextFromFlags(flags);
    base.engine = sim::EngineKind::EventDriven;
    base.engineOverride = nullptr;
    const auto hw = reram::AcceleratorConfig::paperDefault();

    // Pass 1: live event-driven runs, nothing recorded.
    const double eventStart = obs::profileNowUs();
    const auto eventRuns = runGridFlat(
        core::ComparisonHarness(hw, base), systems, datasets);
    const double eventUs = obs::profileNowUs() - eventStart;

    // Pass 2: same runs with the recorder attached, then encode the
    // deduplicated bundle — the full --isa-trace-out code path.
    sim::SimContext recording = base;
    recording.isaRecorder = std::make_shared<isa::StreamRecorder>();
    const double recordStart = obs::profileNowUs();
    runGridFlat(core::ComparisonHarness(hw, recording), systems,
                datasets);
    const isa::TraceBundle bundle = recording.isaRecorder->bundle();
    const std::string traceBytes = isa::encodeBundle(bundle);
    const double recordUs = obs::profileNowUs() - recordStart;

    // Pass 3: decode the bytes and re-time every run from the trace.
    const double replayStart = obs::profileNowUs();
    isa::TraceBundle decoded;
    std::string error;
    if (!isa::decodeBundle(traceBytes, &decoded, &error))
        fatal("trace round trip failed: ", error);
    sim::SimContext replaying = base;
    replaying.engine = sim::EngineKind::Replay;
    replaying.engineOverride =
        std::make_shared<sim::ReplayEngine>(std::move(decoded));
    const auto replayRuns = runGridFlat(
        core::ComparisonHarness(hw, replaying), systems, datasets);
    const double replayUs = obs::profileNowUs() - replayStart;

    if (replayRuns.size() != eventRuns.size())
        fatal("replay grid size mismatch");
    for (size_t i = 0; i < eventRuns.size(); ++i)
        if (!bitIdentical(eventRuns[i], replayRuns[i]))
            fatal("replay diverged from the event engine on ",
                  eventRuns[i].systemName, " / ",
                  eventRuns[i].datasetName);
    inform("all ", eventRuns.size(),
           " replayed runs bit-identical to the event engine");

    uint64_t totalCommands = 0;
    for (const auto &stream : bundle.streams)
        totalCommands += stream.commands.size();

    Table table("ISA lower/trace/replay cost (" +
                    std::to_string(eventRuns.size()) + " runs)",
                {"pass", "wall-clock ms", "vs event"});
    const auto addPass = [&table, eventUs](const std::string &name,
                                           double us) {
        table.row()
            .cell(name)
            .cell(us / 1000.0, 2)
            .cell(eventUs > 0.0 ? us / eventUs : 0.0, 3);
    };
    addPass("event (live)", eventUs);
    addPass("event + record + encode", recordUs);
    addPass("decode + replay", replayUs);
    table.print(std::cout);
    std::cout << "\ntrace: " << bundle.streams.size()
              << " unique stream(s), " << totalCommands
              << " commands, " << traceBytes.size()
              << " bytes on the wire\n"
              << "Recording rides along on the event pass for the "
                 "cost of lowering; replay re-times the whole grid "
                 "from "
              << traceBytes.size()
              << " bytes with zero divergence.\n";

    if (const std::string path = flags.getString("json-out");
        !path.empty()) {
        json::Value doc = json::Value::object();
        doc.set("bench", "ablation_isa_replay");
        doc.set("runs", static_cast<double>(eventRuns.size()));
        doc.set("event_ms", eventUs / 1000.0);
        doc.set("record_ms", recordUs / 1000.0);
        doc.set("replay_ms", replayUs / 1000.0);
        doc.set("record_overhead_vs_event",
                eventUs > 0.0 ? recordUs / eventUs : 0.0);
        doc.set("replay_vs_event",
                eventUs > 0.0 ? replayUs / eventUs : 0.0);
        doc.set("trace_bytes", static_cast<double>(traceBytes.size()));
        doc.set("bit_identical", true);
        json::Value streams = json::Value::array();
        for (const auto &stream : bundle.streams) {
            json::Value s = json::Value::object();
            s.set("label", stream.label);
            s.set("commands",
                  static_cast<double>(stream.commands.size()));
            s.set("stages", static_cast<double>(
                                stream.desc.stageTimesNs.size()));
            streams.push(std::move(s));
        }
        doc.set("streams", std::move(streams));
        std::ofstream out(path);
        if (!out)
            fatal("cannot open --json-out file ", path);
        out << doc.dumpIndented() << '\n';
        inform("wrote replay baseline to ", path);
    }
    core::writeMetricsIfRequested(flags, base);
    return 0;
}
