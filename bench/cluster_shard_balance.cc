/**
 * @file
 * Cluster placement bench: how evenly rendezvous hashing spreads
 * real serving cache keys across shard counts, and how much of the
 * keyspace moves when a shard is added (the reshard cost). Keys are
 * genuine serve::cacheKey digests of a request grid — the same
 * content-addressed keys the router places — not synthetic strings,
 * so the reported imbalance is what a cluster operator would see.
 *
 * With --json-out, writes the grid as BENCH_shard_balance.json.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/shards.hh"
#include "common/flags.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "reram/config.hh"
#include "serve/request.hh"

namespace {

using namespace gopim;

/** Cache keys of a realistic request grid (2048 unique requests). */
std::vector<std::string>
requestGridKeys()
{
    const reram::AcceleratorConfig hw =
        reram::AcceleratorConfig::paperDefault();
    const serve::Request defaults;
    std::vector<std::string> keys;
    for (const char *dataset : {"ddi", "Cora"}) {
        for (const char *system : {"GoPIM", "Serial"}) {
            for (int microBatch : {32, 64}) {
                for (int seed = 1; seed <= 256; ++seed) {
                    json::Value body = json::Value::object();
                    body.set("dataset", dataset);
                    body.set("system", system);
                    body.set("micro_batch", microBatch);
                    body.set("seed", seed);
                    serve::Request request;
                    if (auto err = serve::parseRequest(
                            body, defaults, &request);
                        !err.ok())
                        fatal(err.message);
                    serve::ResolvedRequest resolved;
                    if (auto err =
                            serve::resolveRequest(request, &resolved);
                        !err.ok())
                        fatal(err.message);
                    keys.push_back(serve::cacheKey(resolved, hw));
                }
            }
        }
    }
    return keys;
}

std::vector<std::string>
shardNames(size_t count)
{
    std::vector<std::string> names;
    for (size_t i = 0; i < count; ++i)
        names.push_back("shard" + std::to_string(i));
    return names;
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags("cluster_shard_balance",
                "rendezvous placement balance of real serve cache "
                "keys across shard counts");
    flags.addString("json-out", "",
                    "write the balance grid as JSON here");
    if (!flags.parse(argc, argv))
        return 0;

    const std::vector<std::string> keys = requestGridKeys();

    Table table("Rendezvous placement of " +
                    std::to_string(keys.size()) +
                    " serve cache keys (imbalance = max/avg; "
                    "moved = keys relocated when one shard joins)",
                {"shards", "min", "max", "avg", "imbalance",
                 "moved", "moved frac", "ideal frac"});
    json::Value rows = json::Value::array();

    for (const size_t shardCount : {2u, 4u, 8u, 16u}) {
        const std::vector<std::string> names =
            shardNames(shardCount);
        std::vector<std::string> grown = names;
        grown.push_back("shard" + std::to_string(shardCount));

        std::vector<size_t> perShard(shardCount, 0);
        size_t moved = 0;
        for (const std::string &key : keys) {
            const size_t before =
                cluster::rendezvousShard(key, names);
            ++perShard[before];
            if (grown[cluster::rendezvousShard(key, grown)] !=
                names[before])
                ++moved;
        }
        size_t lo = keys.size(), hi = 0;
        for (const size_t count : perShard) {
            lo = count < lo ? count : lo;
            hi = count > hi ? count : hi;
        }
        const double avg = static_cast<double>(keys.size()) /
                           static_cast<double>(shardCount);
        const double movedFrac =
            static_cast<double>(moved) /
            static_cast<double>(keys.size());
        const double idealFrac =
            1.0 / static_cast<double>(shardCount + 1);

        table.row()
            .cell(static_cast<uint64_t>(shardCount))
            .cell(static_cast<uint64_t>(lo))
            .cell(static_cast<uint64_t>(hi))
            .cell(avg, 1)
            .cell(static_cast<double>(hi) / avg, 3)
            .cell(static_cast<uint64_t>(moved))
            .cell(movedFrac, 3)
            .cell(idealFrac, 3);

        json::Value row = json::Value::object();
        row.set("shards", static_cast<int64_t>(shardCount));
        row.set("min", static_cast<int64_t>(lo));
        row.set("max", static_cast<int64_t>(hi));
        row.set("avg", avg);
        row.set("imbalance", static_cast<double>(hi) / avg);
        row.set("moved", static_cast<int64_t>(moved));
        row.set("moved_fraction", movedFrac);
        row.set("ideal_fraction", idealFrac);
        rows.push(std::move(row));
    }

    table.print(std::cout);
    std::cout << "\nRendezvous hashing relocates only the keys the "
                 "joining shard wins:\nthe moved fraction should "
                 "track the ideal 1/(n+1) share, and the\nimbalance "
                 "stays near 1 — no shard's LRU cache is starved or "
                 "swamped.\n";

    if (const std::string path = flags.getString("json-out");
        !path.empty()) {
        json::Value doc = json::Value::object();
        doc.set("bench", "shard_balance");
        doc.set("keys", static_cast<int64_t>(keys.size()));
        doc.set("rows", std::move(rows));
        std::ofstream out(path);
        if (!out)
            fatal("cannot write ", path);
        out << doc.dumpIndented() << '\n';
        inform("wrote ", path);
    }
    return 0;
}
