/**
 * @file
 * Predictor feature ablation (Section V-A): the paper selected its
 * ten Table I features by removing one candidate at a time and
 * keeping those whose removal hurt accuracy. Reproduce the study:
 * train the stage-time MLP with each feature zeroed out and report
 * the RMSE degradation per feature.
 */

#include <cmath>
#include <iostream>

#include "common/rng.hh"
#include "common/table.hh"
#include "gcn/time_model.hh"
#include "ml/data.hh"
#include "ml/metrics.hh"
#include "ml/mlp.hh"
#include "predictor/datagen.hh"
#include "predictor/features.hh"
#include "reram/config.hh"

namespace {

using namespace gopim;

/**
 * Several Table I features encode the same quantity from two stage
 * perspectives (|V| appears as C_A^AG and R_F^AG; the micro-batch as
 * R_IFM^CO and R_A^AG), so removing one column leaves the redundant
 * copy and degrades nothing. The meaningful ablation removes each
 * semantic *group*.
 */
struct FeatureGroup
{
    const char *name;
    std::vector<size_t> columns;
};

const std::vector<FeatureGroup> kGroups = {
    {"micro-batch rows (R_IFM^CO, R_A^AG)", {0, 4}},
    {"F_in (C_IFM^CO, R_W^CO)", {1, 2}},
    {"F_out (C_W^CO, C_F^AG)", {3, 7}},
    {"|V| (C_A^AG, R_F^AG)", {5, 6}},
    {"sparsity s", {8}},
    {"layer k", {9}},
};

/** Train/evaluate on the pooled task with a feature group masked. */
double
rmseWithMask(const ml::Dataset &train, const ml::Dataset &test,
             const std::vector<size_t> &masked)
{
    auto maskSet = [&masked](const ml::Dataset &src) {
        ml::Dataset out = src;
        for (size_t col : masked)
            for (size_t r = 0; r < out.x.rows(); ++r)
                out.x(r, col) = 0.0f;
        return out;
    };
    const auto trainMasked = maskSet(train);
    const auto testMasked = maskSet(test);

    ml::MlpRegressor mlp({.hiddenLayers = {64}, .epochs = 120});
    mlp.fit(trainMasked);
    return ml::rmse(testMasked.y, mlp.predictAll(testMasked.x));
}

} // namespace

int
main()
{
    const gcn::StageTimeModel model(
        reram::AcceleratorConfig::paperDefault());
    const auto samples = predictor::generateSamples(model, 120, 55);

    // Pooled task with stage-type one-hot (as in fig09).
    ml::Dataset pooled;
    for (size_t type = 0; type < samples.perStageType.size(); ++type) {
        const auto &d = samples.perStageType[type];
        for (size_t r = 0; r < d.size(); ++r) {
            std::vector<float> row(d.x.rowPtr(r),
                                   d.x.rowPtr(r) + d.x.cols());
            for (size_t t = 0; t < samples.perStageType.size(); ++t)
                row.push_back(t == type ? 1.0f : 0.0f);
            pooled.append(row, d.y[r]);
        }
    }
    Rng rng(56);
    auto split = ml::trainTestSplit(pooled, 0.8, rng);
    ml::StandardScaler scaler;
    scaler.fit(split.train.x);
    split.train.x = scaler.transform(split.train.x);
    split.test.x = scaler.transform(split.test.x);

    const double baseline =
        rmseWithMask(split.train, split.test, {});
    std::cout << "baseline RMSE (all ten features): " << baseline
              << "\n\n";

    Table table("Predictor feature ablation (Section V-A)",
                {"removed feature group", "RMSE", "degradation x"});
    for (const auto &group : kGroups) {
        const double r =
            rmseWithMask(split.train, split.test, group.columns);
        table.row()
            .cell(group.name)
            .cell(r, 4)
            .cell(r / baseline, 2);
    }
    table.print(std::cout);
    std::cout << "\nGroups whose removal degrades RMSE are the ones "
                 "the paper keeps; |V| and the matrix dims should "
                 "dominate.\n";
    return 0;
}
