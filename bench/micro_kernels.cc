/**
 * @file
 * google-benchmark micro-benchmarks for the simulator's hot kernels:
 * the greedy heap allocator vs the bottleneck-sweep reference (the
 * paper's decision-time claim), pipeline scheduling, vertex mapping,
 * graph generation, and the MVM kernel of the tensor substrate.
 */

#include <benchmark/benchmark.h>

#include "alloc/allocator.hh"
#include "alloc/dp.hh"
#include "alloc/greedy_heap.hh"
#include "common/rng.hh"
#include "gcn/time_model.hh"
#include "gcn/workload.hh"
#include "graph/generators.hh"
#include "mapping/vertex_map.hh"
#include "pipeline/schedule.hh"
#include "tensor/init.hh"
#include "tensor/ops.hh"

namespace {

using namespace gopim;

alloc::AllocationProblem
makeProblem(size_t stages, uint64_t spare, uint64_t seed)
{
    Rng rng(seed);
    alloc::AllocationProblem p;
    for (size_t i = 0; i < stages; ++i) {
        p.stages.push_back({pipeline::StageType::Combination,
                            static_cast<uint32_t>(i / 4 + 1)});
        p.scalableTimesNs.push_back(rng.uniform(10.0, 5000.0));
        p.fixedTimesNs.push_back(rng.uniform(0.0, 50.0));
        p.crossbarsPerReplica.push_back(
            1 + rng.uniformInt(uint64_t{500}));
    }
    p.spareCrossbars = spare;
    p.numMicroBatches = 64;
    p.maxUsefulReplicas = 256;
    return p;
}

void
BM_GreedyHeapAllocator(benchmark::State &state)
{
    const auto p = makeProblem(static_cast<size_t>(state.range(0)),
                               1'000'000, 7);
    const alloc::GreedyHeapAllocator allocator;
    for (auto _ : state) {
        auto result = allocator.allocate(p);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_GreedyHeapAllocator)->Arg(8)->Arg(12)->Arg(24);

void
BM_BottleneckSweepAllocator(benchmark::State &state)
{
    // The expensive reference decision procedure (Section V-B says
    // DP-style decisions can take days at scale; compare decision
    // times against the greedy above).
    const auto p = makeProblem(static_cast<size_t>(state.range(0)),
                               1'000'000, 7);
    const alloc::BottleneckSweepAllocator allocator(256);
    for (auto _ : state) {
        auto result = allocator.allocate(p);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_BottleneckSweepAllocator)->Arg(8)->Arg(12);

void
BM_PipelineSchedule(benchmark::State &state)
{
    Rng rng(9);
    std::vector<double> times(12);
    for (auto &t : times)
        t = rng.uniform(1.0, 100.0);
    const auto b = static_cast<uint32_t>(state.range(0));
    for (auto _ : state) {
        auto result = pipeline::schedulePipelined(times, b);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_PipelineSchedule)->Arg(64)->Arg(1024);

void
BM_InterleavedMapping(benchmark::State &state)
{
    Rng rng(11);
    const auto degrees = graph::powerLawDegreeSequence(
        static_cast<uint64_t>(state.range(0)), 50.0, 2.1, 10000, rng);
    for (auto _ : state) {
        auto assignment = mapping::mapVertices(
            degrees, 64, mapping::VertexMapStrategy::Interleaved);
        benchmark::DoNotOptimize(assignment);
    }
}
BENCHMARK(BM_InterleavedMapping)->Arg(10000)->Arg(100000);

void
BM_ChungLuGeneration(benchmark::State &state)
{
    Rng rng(13);
    const auto degrees = graph::powerLawDegreeSequence(
        static_cast<uint64_t>(state.range(0)), 16.0, 2.1, 2000, rng);
    for (auto _ : state) {
        Rng local(17);
        auto g = graph::chungLu(degrees, local);
        benchmark::DoNotOptimize(g);
    }
}
BENCHMARK(BM_ChungLuGeneration)->Arg(10000)->Arg(50000);

void
BM_StageCostModel(benchmark::State &state)
{
    const gcn::StageTimeModel model(
        reram::AcceleratorConfig::paperDefault());
    const auto workload = gcn::Workload::paperDefault("arxiv");
    const auto profile =
        gcn::VertexProfile::build(workload.dataset, workload.seed);
    gcn::ExecutionPolicy policy;
    policy.selectiveUpdate = true;
    policy.mapStrategy = mapping::VertexMapStrategy::Interleaved;
    const auto artifacts = gcn::MappingArtifacts::build(
        profile, policy, workload.dataset, 64);
    for (auto _ : state) {
        auto costs = model.allCosts(workload, policy, artifacts);
        benchmark::DoNotOptimize(costs);
    }
}
BENCHMARK(BM_StageCostModel);

void
BM_DenseMatmul(benchmark::State &state)
{
    Rng rng(19);
    const auto n = static_cast<size_t>(state.range(0));
    const auto a = tensor::uniformInit(n, n, -1.0f, 1.0f, rng);
    const auto b = tensor::uniformInit(n, n, -1.0f, 1.0f, rng);
    for (auto _ : state) {
        auto c = tensor::matmul(a, b);
        benchmark::DoNotOptimize(c);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(n) * n * n);
}
BENCHMARK(BM_DenseMatmul)->Arg(64)->Arg(256);

} // namespace
