/**
 * @file
 * google-benchmark micro-benchmarks for the simulator's hot kernels:
 * the greedy heap allocator vs the bottleneck-sweep reference (the
 * paper's decision-time claim), pipeline scheduling, vertex mapping,
 * graph generation, and the MVM kernel of the tensor substrate.
 *
 * --json-out=PATH writes the timings through the repo's own JSON
 * writer (common/json.hh, the same machine-readable surface the
 * BENCH_*.json artifacts and core::runResultToJson use), so CI can
 * archive kernel timings without parsing benchmark's console format.
 */

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "alloc/allocator.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "alloc/dp.hh"
#include "alloc/greedy_heap.hh"
#include "common/rng.hh"
#include "gcn/time_model.hh"
#include "gcn/workload.hh"
#include "graph/generators.hh"
#include "mapping/vertex_map.hh"
#include "pipeline/schedule.hh"
#include "tensor/init.hh"
#include "tensor/ops.hh"

namespace {

using namespace gopim;

alloc::AllocationProblem
makeProblem(size_t stages, uint64_t spare, uint64_t seed)
{
    Rng rng(seed);
    alloc::AllocationProblem p;
    for (size_t i = 0; i < stages; ++i) {
        p.stages.push_back({pipeline::StageType::Combination,
                            static_cast<uint32_t>(i / 4 + 1)});
        p.scalableTimesNs.push_back(rng.uniform(10.0, 5000.0));
        p.fixedTimesNs.push_back(rng.uniform(0.0, 50.0));
        p.crossbarsPerReplica.push_back(
            1 + rng.uniformInt(uint64_t{500}));
    }
    p.spareCrossbars = spare;
    p.numMicroBatches = 64;
    p.maxUsefulReplicas = 256;
    return p;
}

void
BM_GreedyHeapAllocator(benchmark::State &state)
{
    const auto p = makeProblem(static_cast<size_t>(state.range(0)),
                               1'000'000, 7);
    const alloc::GreedyHeapAllocator allocator;
    for (auto _ : state) {
        auto result = allocator.allocate(p);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_GreedyHeapAllocator)->Arg(8)->Arg(12)->Arg(24);

void
BM_BottleneckSweepAllocator(benchmark::State &state)
{
    // The expensive reference decision procedure (Section V-B says
    // DP-style decisions can take days at scale; compare decision
    // times against the greedy above).
    const auto p = makeProblem(static_cast<size_t>(state.range(0)),
                               1'000'000, 7);
    const alloc::BottleneckSweepAllocator allocator(256);
    for (auto _ : state) {
        auto result = allocator.allocate(p);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_BottleneckSweepAllocator)->Arg(8)->Arg(12);

void
BM_PipelineSchedule(benchmark::State &state)
{
    Rng rng(9);
    std::vector<double> times(12);
    for (auto &t : times)
        t = rng.uniform(1.0, 100.0);
    const auto b = static_cast<uint32_t>(state.range(0));
    for (auto _ : state) {
        auto result = pipeline::schedulePipelined(times, b);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_PipelineSchedule)->Arg(64)->Arg(1024);

void
BM_InterleavedMapping(benchmark::State &state)
{
    Rng rng(11);
    const auto degrees = graph::powerLawDegreeSequence(
        static_cast<uint64_t>(state.range(0)), 50.0, 2.1, 10000, rng);
    for (auto _ : state) {
        auto assignment = mapping::mapVertices(
            degrees, 64, mapping::VertexMapStrategy::Interleaved);
        benchmark::DoNotOptimize(assignment);
    }
}
BENCHMARK(BM_InterleavedMapping)->Arg(10000)->Arg(100000);

void
BM_ChungLuGeneration(benchmark::State &state)
{
    Rng rng(13);
    const auto degrees = graph::powerLawDegreeSequence(
        static_cast<uint64_t>(state.range(0)), 16.0, 2.1, 2000, rng);
    for (auto _ : state) {
        Rng local(17);
        auto g = graph::chungLu(degrees, local);
        benchmark::DoNotOptimize(g);
    }
}
BENCHMARK(BM_ChungLuGeneration)->Arg(10000)->Arg(50000);

void
BM_StageCostModel(benchmark::State &state)
{
    const gcn::StageTimeModel model(
        reram::AcceleratorConfig::paperDefault());
    const auto workload = gcn::Workload::paperDefault("arxiv");
    const auto profile =
        gcn::VertexProfile::build(workload.dataset, workload.seed);
    gcn::ExecutionPolicy policy;
    policy.selectiveUpdate = true;
    policy.mapStrategy = mapping::VertexMapStrategy::Interleaved;
    const auto artifacts = gcn::MappingArtifacts::build(
        profile, policy, workload.dataset, 64);
    for (auto _ : state) {
        auto costs = model.allCosts(workload, policy, artifacts);
        benchmark::DoNotOptimize(costs);
    }
}
BENCHMARK(BM_StageCostModel);

void
BM_DenseMatmul(benchmark::State &state)
{
    Rng rng(19);
    const auto n = static_cast<size_t>(state.range(0));
    const auto a = tensor::uniformInit(n, n, -1.0f, 1.0f, rng);
    const auto b = tensor::uniformInit(n, n, -1.0f, 1.0f, rng);
    for (auto _ : state) {
        auto c = tensor::matmul(a, b);
        benchmark::DoNotOptimize(c);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(n) * n * n);
}
BENCHMARK(BM_DenseMatmul)->Arg(64)->Arg(256);

/**
 * Console reporter that additionally collects every run into a
 * common/json document instead of benchmark's own JSON dialect, so
 * the output matches the BENCH_*.json artifacts the ablation benches
 * emit. Riding on the display reporter avoids the library's
 * requirement that file reporters come with --benchmark_out.
 */
class JsonCollector : public benchmark::ConsoleReporter
{
  public:
    void ReportRuns(const std::vector<Run> &runs) override
    {
        benchmark::ConsoleReporter::ReportRuns(runs);
        for (const auto &run : runs) {
            if (run.error_occurred)
                continue;
            json::Value v = json::Value::object();
            v.set("name", run.benchmark_name());
            v.set("iterations",
                  static_cast<double>(run.iterations));
            v.set("real_time_ns", run.GetAdjustedRealTime());
            v.set("cpu_time_ns", run.GetAdjustedCPUTime());
            if (const auto it = run.counters.find("items_per_second");
                it != run.counters.end())
                v.set("items_per_second",
                      static_cast<double>(it->second));
            runs_.push(std::move(v));
        }
    }

    json::Value document() &&
    {
        json::Value doc = json::Value::object();
        doc.set("bench", "micro_kernels");
        doc.set("runs", std::move(runs_));
        return doc;
    }

  private:
    json::Value runs_ = json::Value::array();
};

} // namespace

int
main(int argc, char **argv)
{
    // Peel off --json-out before benchmark sees the arguments; every
    // other flag passes through to the library untouched.
    std::string jsonOut;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        constexpr const char *kFlag = "--json-out=";
        if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0)
            jsonOut = argv[i] + std::strlen(kFlag);
        else
            args.push_back(argv[i]);
    }
    int filteredArgc = static_cast<int>(args.size());
    benchmark::Initialize(&filteredArgc, args.data());
    if (benchmark::ReportUnrecognizedArguments(filteredArgc,
                                               args.data()))
        return 1;

    if (jsonOut.empty()) {
        benchmark::RunSpecifiedBenchmarks();
    } else {
        JsonCollector collector;
        benchmark::RunSpecifiedBenchmarks(&collector);
        std::ofstream out(jsonOut);
        if (!out)
            fatal("cannot open --json-out file ", jsonOut);
        out << std::move(collector).document().dumpIndented() << '\n';
        inform("wrote kernel timings to ", jsonOut);
    }
    benchmark::Shutdown();
    return 0;
}
