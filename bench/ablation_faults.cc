/**
 * @file
 * Fault/repair ablation: how ReRAM stuck-cell rates and conductance
 * drift bend the end-to-end story, and how much each repair policy
 * buys back. Sweeps fault rate x repair policy over GoPIM and the
 * Serial baseline (timing side, speedup vs Serial under the *same*
 * device health) and over the functional trainer (accuracy side).
 *
 * --json-out (default BENCH_faults.json) writes every cell of the
 * sweep as machine-readable JSON; the same sweep is reproducible
 * through gopim_serve with the stuck_on_rate/repair request knobs.
 */

#include <fstream>
#include <iostream>
#include <map>
#include <utility>
#include <vector>

#include "common/flags.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "core/harness.hh"
#include "core/options.hh"
#include "fault/model.hh"
#include "gcn/trainer.hh"
#include "gcn/workload.hh"
#include "graph/generators.hh"

using namespace gopim;

namespace {

/** The fault environment one sweep cell runs under. */
fault::FaultConfig
faultConfigFor(double rate, fault::RepairKind repair)
{
    fault::FaultConfig config;
    // Split the swept rate across both stuck polarities and let it
    // double as the drift rate, so every repair policy has the
    // mechanism it targets present in the sweep.
    config.params.stuckOnRate = rate / 2.0;
    config.params.stuckOffRate = rate / 2.0;
    config.params.driftPerEpoch = rate;
    config.repair = repair;
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags("ablation_faults",
                "fault-rate x repair-policy ablation: speedup and "
                "training accuracy under device faults");
    flags.addString("dataset", "Cora",
                    "catalog dataset for the timing sweep");
    flags.addInt("train-epochs", 40,
                 "functional-trainer epochs per accuracy cell");
    core::addSimFlags(flags);
    core::addJsonOutFlag(flags, "BENCH_faults.json");
    if (!flags.parse(argc, argv))
        return 0;

    const std::vector<double> rates = {0.0, 0.001, 0.01};
    const auto &repairs = fault::allRepairKinds();
    const std::vector<std::string> systems = {"Serial", "GoPIM"};

    const auto workload =
        gcn::Workload::paperDefault(flags.getString("dataset"));

    // Accuracy side: one functional-trainer run per (rate, repair)
    // cell on a synthetic labeled graph — device health, not the
    // pipeline, decides accuracy, so the cell is system-independent.
    Rng rng(3);
    const auto labeled =
        graph::degreeCorrectedPartition(800, 4, 20.0, 2.1, 0.2, rng);
    std::map<std::pair<double, int>, double> accuracy;
    for (double rate : rates) {
        for (fault::RepairKind repair : repairs) {
            gcn::TrainerConfig tc;
            tc.epochs =
                static_cast<uint32_t>(flags.getInt("train-epochs"));
            tc.featureDim = 16;
            tc.hiddenChannels = 32;
            tc.fault = faultConfigFor(rate, repair);
            gcn::FunctionalTrainer trainer(labeled, tc);
            accuracy[{rate, static_cast<int>(repair)}] =
                trainer.train({}).bestTestAccuracy;
        }
    }

    // Timing side: both systems under each fault environment; the
    // speedup normalizes GoPIM against Serial at the *same* device
    // health so it isolates the scheduler, not the fault rate.
    // One context for the whole sweep so every cell records into the
    // same metrics registry (when --metrics-out is set).
    const sim::SimContext ctx = core::simContextFromFlags(flags);
    json::Value jsonRows = json::Value::array();
    Table table("fault-rate x repair ablation (" +
                    workload.dataset.name + ")",
                {"cell fault rate", "repair", "system", "makespan",
                 "speedup vs Serial", "residual rate", "write amp",
                 "best test acc %"});
    for (double rate : rates) {
        for (fault::RepairKind repair : repairs) {
            core::ComparisonHarness harness(
                reram::AcceleratorConfig::paperDefault(), ctx);
            harness.setFaultConfig(faultConfigFor(rate, repair));

            std::vector<core::RunResult> runs;
            for (const std::string &name : systems)
                runs.push_back(harness.runOne(
                    core::systemFromName(name), workload));
            const double acc =
                accuracy[{rate, static_cast<int>(repair)}];

            for (const auto &run : runs) {
                const double speedup = run.speedupOver(runs.front());
                table.row()
                    .cell(rate, 4)
                    .cell(toString(repair))
                    .cell(run.systemName)
                    .cell(formatTimeNs(run.makespanNs))
                    .cell(speedup, 2)
                    .cell(run.residualFaultRate, 5)
                    .cell(run.writeAmplification, 2)
                    .cell(acc * 100.0, 2);

                json::Value row = json::Value::object();
                row.set("dataset", workload.dataset.name);
                row.set("cell_fault_rate", rate);
                row.set("drift_per_epoch", rate);
                row.set("repair", toString(repair));
                row.set("system", run.systemName);
                row.set("engine", run.engineName);
                row.set("makespan_ns", run.makespanNs);
                row.set("energy_pj", run.energyPj);
                row.set("speedup_vs_serial", speedup);
                row.set("raw_fault_rate", run.rawFaultRate);
                row.set("residual_fault_rate",
                        run.residualFaultRate);
                row.set("write_amplification",
                        run.writeAmplification);
                row.set("repair_stall_ns", run.repairStallNs);
                row.set("wear_lifetime_fraction",
                        run.wearLifetimeFraction);
                row.set("write_exposure", run.writeExposure);
                row.set("best_test_accuracy", acc);
                jsonRows.push(std::move(row));
            }
        }
    }
    table.print(std::cout);
    std::cout << "\nSpare rows cancel stuck cells at low rates, ECC "
                 "squares the residual (strongest at high rates but "
                 "doubles writes), refresh only helps drift — and "
                 "none of them moves the zero-fault row, which stays "
                 "bit-identical to the fault-free build.\n";

    if (const std::string path = flags.getString("json-out");
        !path.empty()) {
        json::Value doc = json::Value::object();
        doc.set("bench", "ablation_faults");
        doc.set("rows", std::move(jsonRows));
        std::ofstream out(path);
        if (!out)
            fatal("cannot open --json-out file ", path);
        out << doc.dumpIndented() << '\n';
        inform("wrote fault ablation grid to ", path);
    }
    core::writeMetricsIfRequested(flags, ctx);
    core::writeIsaTraceIfRequested(flags, ctx);
    return 0;
}
