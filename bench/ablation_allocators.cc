/**
 * @file
 * Allocation-policy ablation: makespan quality and decision time of
 * Algorithm 1's heap greedy against the annealing and
 * bottleneck-sweep references and the naive baselines, across the
 * evaluation datasets. Backs the paper's Section V-B claim that the
 * greedy's quality matches far costlier decision procedures.
 */

#include <chrono>
#include <iostream>
#include <memory>

#include "alloc/annealing.hh"
#include "alloc/basic.hh"
#include "alloc/dp.hh"
#include "alloc/greedy_heap.hh"
#include "common/table.hh"
#include "core/accelerator.hh"
#include "core/harness.hh"
#include "core/systems.hh"
#include "gcn/time_model.hh"
#include "gcn/workload.hh"
#include "graph/datasets.hh"

namespace {

using namespace gopim;

/** Build the allocation problem the accelerator would build. */
alloc::AllocationProblem
problemFor(const gcn::Workload &workload,
           const reram::AcceleratorConfig &hw)
{
    const gcn::StageTimeModel model(hw);
    gcn::ExecutionPolicy policy; // vanilla
    const auto artifacts = gcn::MappingArtifacts::fullUpdateApprox(
        workload.dataset.numVertices, hw.crossbar.rows);
    const auto costs = model.allCosts(workload, policy, artifacts);

    alloc::AllocationProblem p;
    p.stages = pipeline::buildTrainingStages(workload.model.numLayers);
    p.numMicroBatches = workload.microBatchesPerEpoch();
    p.maxUsefulReplicas = workload.microBatchSize * 4;
    uint64_t mandatory = 0;
    for (const auto &c : costs) {
        p.scalableTimesNs.push_back(c.scalableNs);
        p.fixedTimesNs.push_back(c.fixedNs);
        p.crossbarsPerReplica.push_back(c.crossbarsPerReplica);
        mandatory += c.crossbarsPerReplica;
    }
    p.spareCrossbars = hw.totalCrossbars() - mandatory;
    return p;
}

} // namespace

int
main()
{
    const auto hw = reram::AcceleratorConfig::paperDefault();

    std::vector<std::unique_ptr<alloc::Allocator>> policies;
    policies.push_back(std::make_unique<alloc::GreedyHeapAllocator>());
    policies.push_back(std::make_unique<alloc::AnnealingAllocator>(
        alloc::AnnealingParams{.iterations = 30000}));
    policies.push_back(
        std::make_unique<alloc::BottleneckSweepAllocator>(256));
    policies.push_back(
        std::make_unique<alloc::FixedRatioAllocator>(1.0, 2.0));
    policies.push_back(
        std::make_unique<alloc::SpaceProportionalAllocator>());

    Table quality("Ablation: pipelined makespan per allocator, "
                  "normalized to GreedyHeap (above 1.00 = slower "
                  "than Algorithm 1)",
                  {"dataset", "GreedyHeap", "Annealing",
                   "BottleneckSweep", "FixedRatio", "SpaceProp"});
    Table cost("Ablation: decision time per allocator (us)",
               {"dataset", "GreedyHeap", "Annealing",
                "BottleneckSweep", "FixedRatio", "SpaceProp"});

    for (const auto &spec : graph::DatasetCatalog::figure13Set()) {
        const auto workload = gcn::Workload::paperDefault(spec.name);
        const auto problem = problemFor(workload, hw);

        auto &qrow = quality.row().cell(spec.name);
        auto &crow = cost.row().cell(spec.name);
        double greedyMakespan = 0.0;
        for (size_t i = 0; i < policies.size(); ++i) {
            const auto t0 = std::chrono::steady_clock::now();
            const auto result = policies[i]->allocate(problem);
            const auto t1 = std::chrono::steady_clock::now();
            const double makespan =
                alloc::makespanNs(problem, result.replicas);
            if (i == 0)
                greedyMakespan = makespan;
            qrow.cell(makespan / greedyMakespan, 3);
            crow.cell(
                std::chrono::duration<double, std::micro>(t1 - t0)
                    .count(),
                1);
        }
    }
    quality.print(std::cout);
    std::cout << '\n';
    cost.print(std::cout);
    std::cout << "\nThe paper's DP-style reference can take days at "
                 "products scale; Algorithm 1 decides in "
                 "micro/milliseconds with matching quality.\n";
    return 0;
}
