/**
 * @file
 * Figure 13 reproduction: end-to-end speedup (a) and energy saving
 * (b) of Serial, SlimGNN-like, ReGraphX, ReFlip, GoPIM-Vanilla, and
 * GoPIM over the five evaluation datasets, normalized to Serial.
 *
 * Paper headline averages: GoPIM over Serial 727.6x (10.2x-3454.3x),
 * over SlimGNN-like 2.1x, over ReGraphX 2.4x, over ReFlip 45.1x, over
 * GoPIM-Vanilla 1.5x; energy savings over Serial: GoPIM 4.0x,
 * SlimGNN-like 2.6x, ReGraphX 2.5x, ReFlip 1.4x, Vanilla 3.0x.
 */

#include <iostream>
#include <vector>

#include "common/flags.hh"
#include "common/math_utils.hh"
#include "common/table.hh"
#include "core/harness.hh"
#include "core/options.hh"
#include "graph/datasets.hh"

int
main(int argc, char **argv)
{
    using namespace gopim;

    Flags flags("fig13_overall",
                "Fig. 13 end-to-end speedup and energy comparison");
    core::addSimFlags(flags);
    core::addJsonOutFlag(flags, "BENCH_fig13.json");
    if (!flags.parse(argc, argv))
        return 0;

    const sim::SimContext ctx = core::simContextFromFlags(flags);
    core::ComparisonHarness harness(
        reram::AcceleratorConfig::paperDefault(), ctx);
    const auto systems = core::figure13Systems();
    std::vector<std::string> datasetNames;
    for (const auto &spec : graph::DatasetCatalog::figure13Set())
        datasetNames.push_back(spec.name);

    const auto rows = harness.runGrid(systems, datasetNames,
                                      core::jobsFromFlags(flags));
    core::writeGridJsonIfRequested(flags, rows);
    core::writeMetricsIfRequested(flags, ctx);
    core::writeIsaTraceIfRequested(flags, ctx);

    harness
        .speedupTable(
            "Figure 13(a): end-to-end speedup normalized to Serial",
            rows)
        .print(std::cout);
    std::cout << '\n';
    harness
        .energyTable(
            "Figure 13(b): energy saving normalized to Serial", rows)
        .print(std::cout);

    // GoPIM-vs-each-baseline averages (the paper's summary claims).
    const size_t gopimIdx = systems.size() - 1;
    Table summary("GoPIM vs each baseline (geomean across datasets)",
                  {"baseline", "speedup", "energy saving",
                   "paper speedup", "paper energy"});
    const char *paperSpeedups[] = {"727.6x", "2.1x", "2.4x", "45.1x",
                                   "1.5x"};
    const char *paperEnergy[] = {"4.0x", "1.5x", "1.6x", "2.9x",
                                 "1.3x"};
    for (size_t s = 0; s + 1 < systems.size(); ++s) {
        std::vector<double> speedups, energies;
        for (const auto &row : rows) {
            speedups.push_back(row.results[s].makespanNs /
                               row.results[gopimIdx].makespanNs);
            energies.push_back(row.results[s].energyPj /
                               row.results[gopimIdx].energyPj);
        }
        summary.row()
            .cell(toString(systems[s]))
            .cell(geomean(speedups), 1)
            .cell(geomean(energies), 2)
            .cell(paperSpeedups[s])
            .cell(paperEnergy[s]);
    }
    summary.print(std::cout);
    std::cout << "\n(paper energy column derived from its per-system "
                 "savings over Serial: 4.0/2.6, 4.0/2.5, 4.0/1.4, "
                 "4.0/3.0)\n";
    return 0;
}
