/**
 * @file
 * Figure 14 reproduction: the contribution of each technique —
 * Serial -> +PP (intra+inter-batch pipelining) -> +ISU (interleaved
 * mapping with selective updating) -> GoPIM (adds ML-based replica
 * allocation) — to end-to-end time and energy across the datasets.
 *
 * Paper: +PP achieves 2.6x on ddi; full GoPIM 3472.3x on ddi; energy
 * reductions up to 62% (+PP), 75% (+ISU), 79% (GoPIM).
 */

#include <iostream>

#include "common/flags.hh"
#include "common/table.hh"
#include "core/harness.hh"
#include "core/options.hh"
#include "graph/datasets.hh"

int
main(int argc, char **argv)
{
    using namespace gopim;

    Flags flags("fig14_ablation",
                "Fig. 14 technique-contribution ablation");
    core::addSimFlags(flags);
    if (!flags.parse(argc, argv))
        return 0;

    core::ComparisonHarness harness(
        reram::AcceleratorConfig::paperDefault(),
        core::simContextFromFlags(flags));
    const auto systems = core::figure14Systems();
    std::vector<std::string> datasetNames;
    for (const auto &spec : graph::DatasetCatalog::figure13Set())
        datasetNames.push_back(spec.name);

    const auto rows = harness.runGrid(systems, datasetNames,
                                      core::jobsFromFlags(flags));

    harness
        .speedupTable("Figure 14(a): speedup of each technique "
                      "(normalized to Serial)",
                      rows)
        .print(std::cout);
    std::cout << '\n';

    // Energy as percent reduction relative to Serial (paper style).
    Table energy("Figure 14(b): energy reduction vs Serial (%)",
                 {"dataset", "+PP", "+ISU", "GoPIM"});
    for (const auto &row : rows) {
        const double serial = row.results[0].energyPj;
        energy.row()
            .cell(row.datasetName)
            .cell((1.0 - row.results[1].energyPj / serial) * 100.0, 1)
            .cell((1.0 - row.results[2].energyPj / serial) * 100.0, 1)
            .cell((1.0 - row.results[3].energyPj / serial) * 100.0, 1);
    }
    energy.print(std::cout);
    std::cout << "\nPaper: up to 62% (+PP), 75% (+ISU), 79% (GoPIM).\n";
    return 0;
}
