/**
 * @file
 * Table VI reproduction: per-stage replica and crossbar counts on
 * ddi, Serial versus GoPIM. The paper's Serial row is
 * [1,1,1,1,1,1,1,1] replicas over [32,534,32,534,32,534,32,534]
 * crossbars (2264 total); GoPIM's allocation reaches hundreds of
 * replicas per stage (1,046,852 crossbars total).
 */

#include <iostream>

#include "common/flags.hh"
#include "common/table.hh"
#include "core/accelerator.hh"
#include "core/harness.hh"
#include "core/options.hh"
#include "core/systems.hh"
#include "gcn/workload.hh"

int
main(int argc, char **argv)
{
    using namespace gopim;

    Flags flags("table06_allocation",
                "Table VI: crossbar allocation details on ddi");
    core::addSimFlags(flags);
    if (!flags.parse(argc, argv))
        return 0;

    core::ComparisonHarness harness(
        reram::AcceleratorConfig::paperDefault(),
        core::simContextFromFlags(flags));
    const auto workload = gcn::Workload::paperDefault("ddi");
    const auto profile =
        gcn::VertexProfile::build(workload.dataset, workload.seed);

    const auto serial =
        harness.runOne(core::SystemKind::Serial, workload, profile);
    const auto gopim =
        harness.runOne(core::SystemKind::GoPim, workload, profile);

    Table table("Table VI: crossbar allocation details on ddi",
                {"stage", "Serial replicas", "Serial crossbars",
                 "GoPIM replicas", "GoPIM crossbars"});
    uint64_t serialTotal = 0, gopimTotal = 0;
    for (size_t i = 0; i < serial.stages.size(); ++i) {
        table.row()
            .cell(serial.stages[i].label())
            .cell(static_cast<uint64_t>(serial.replicas[i]))
            .cell(serial.stageCrossbars[i])
            .cell(static_cast<uint64_t>(gopim.replicas[i]))
            .cell(gopim.stageCrossbars[i]);
        serialTotal += serial.stageCrossbars[i];
        gopimTotal += gopim.stageCrossbars[i];
    }
    table.row()
        .cell("total")
        .cell("-")
        .cell(serialTotal)
        .cell("-")
        .cell(gopimTotal);
    table.print(std::cout);

    std::cout << "\nPaper Serial: 32/534 crossbars per CO/AG stage, "
                 "2264 total.\n";
    std::cout << "Paper GoPIM: replicas [59,364,60,616,61,487,61,484], "
                 "1,046,852 crossbars total.\n";

    // Replica ratio observation from the paper: CO:AG replica ratios
    // per layer (0.162 and 0.097 on ddi).
    std::cout << "\nCO:AG replica ratios per layer (paper: 0.162, "
                 "0.097): "
              << static_cast<double>(gopim.replicas[0]) /
                     gopim.replicas[1]
              << ", "
              << static_cast<double>(gopim.replicas[2]) /
                     gopim.replicas[3]
              << "\n";
    return 0;
}
