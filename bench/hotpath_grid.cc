/**
 * @file
 * Hot-path baseline for runGrid sweeps: the bench behind the
 * committed BENCH_hotpath_before.json / BENCH_hotpath_after.json
 * trajectory (ROADMAP item 4).
 *
 * For each engine (closed-form, event-driven, replay) it times a
 * fig13-style (system x dataset) grid swept `--sweeps` times with a
 * varying seed, two ways:
 *
 *   cold   a fresh ComparisonHarness per sweep — nothing can be
 *          reused across sweeps, every sweep pays workload build,
 *          vertex profiling, mapping, allocation, and lowering from
 *          scratch;
 *   warm   one shared harness across sweeps — the memoized runGrid
 *          path may reuse per-dataset workloads/profiles and
 *          per-cell stage plans keyed by canonical config prefixes.
 *
 * Every cell of every sweep is asserted bit-identical between its
 * cold and warm runs (memoization must change nothing), the replay
 * engine is asserted bit-identical to the event engine, and the
 * closed form is held to the repo's pinned 1e-9 relative parity
 * (tests/test_engine.cc) — so the speedup this bench reports is at
 * equal results by construction. --baseline compares the measured
 * warm-vs-cold speedup against a committed BENCH_hotpath_*.json and
 * fails (exit 1) when it regresses past --tolerance, which is what
 * the CI perf-smoke job runs.
 */

#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <vector>

#include "common/flags.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/harness.hh"
#include "core/options.hh"
#include "core/systems.hh"
#include "gcn/trainer.hh"
#include "graph/generators.hh"
#include "obs/profile.hh"

using namespace gopim;

namespace {

std::vector<std::string>
splitCsv(std::string rest)
{
    std::vector<std::string> out;
    while (!rest.empty()) {
        const size_t comma = rest.find(',');
        out.push_back(rest.substr(0, comma));
        rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    }
    return out;
}

std::vector<core::RunResult>
runGridFlat(const core::ComparisonHarness &harness,
            const std::vector<core::SystemKind> &systems,
            const std::vector<std::string> &datasets, size_t jobs)
{
    std::vector<core::RunResult> flat;
    for (const auto &row : harness.runGrid(systems, datasets, jobs))
        for (const auto &result : row.results)
            flat.push_back(result);
    return flat;
}

bool
bitIdentical(const core::RunResult &a, const core::RunResult &b)
{
    return a.makespanNs == b.makespanNs && a.energyPj == b.energyPj &&
           a.eventsProcessed == b.eventsProcessed &&
           a.idleFraction == b.idleFraction &&
           a.blockedNs == b.blockedNs;
}

void
assertGridsIdentical(const std::vector<core::RunResult> &a,
                     const std::vector<core::RunResult> &b,
                     const char *what)
{
    if (a.size() != b.size())
        fatal("grid size mismatch (", what, ")");
    for (size_t i = 0; i < a.size(); ++i)
        if (!bitIdentical(a[i], b[i]))
            fatal("results diverged (", what, ") on ", a[i].systemName,
                  " / ", a[i].datasetName);
}

/**
 * Closed-form vs event parity at the tolerance pinned by
 * tests/test_engine.cc (eventsProcessed intentionally differs: the
 * closed form processes no events).
 */
void
assertGridsParity(const std::vector<core::RunResult> &closed,
                  const std::vector<core::RunResult> &event)
{
    if (closed.size() != event.size())
        fatal("grid size mismatch (closed vs event)");
    for (size_t i = 0; i < closed.size(); ++i) {
        const auto &a = closed[i];
        const auto &b = event[i];
        const bool ok =
            std::abs(a.makespanNs - b.makespanNs) <=
                1e-9 * a.makespanNs &&
            std::abs(a.energyPj - b.energyPj) <= 1e-9 * a.energyPj;
        if (!ok)
            fatal("closed form lost parity with the event engine on ",
                  a.systemName, " / ", a.datasetName);
    }
}

struct EngineTiming
{
    std::string name;
    double coldUs = 0.0;
    double warmUs = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    Flags flags("hotpath_grid",
                "runGrid hot-path trajectory bench: cold vs warm "
                "(memoized) sweeps on all three engines, bit-identity "
                "asserted cell by cell");
    flags.addString("datasets", "ddi,collab,ppa,proteins,arxiv",
                    "comma-separated catalog datasets");
    flags.addInt("sweeps", 6, "grid sweeps per engine and mode");
    flags.addBool("quick", false,
                  "small CI-sized run (ddi,collab x 4 sweeps)");
    flags.addInt("trainer-epochs", 20,
                 "epochs for the FunctionalTrainer timing probe");
    flags.addString("baseline", "",
                    "committed BENCH_hotpath_*.json to regress "
                    "against (CI perf gate)");
    flags.addDouble("tolerance", 1.15,
                    "allowed warm-speedup regression factor vs the "
                    "baseline");
    core::addSimFlags(flags);
    core::addJsonOutFlag(flags, "BENCH_hotpath.json");
    if (!flags.parse(argc, argv))
        return 0;

    const bool quick = flags.getBool("quick");
    std::vector<std::string> datasets =
        splitCsv(flags.getString("datasets"));
    auto sweeps = static_cast<uint32_t>(flags.getInt("sweeps"));
    if (quick) {
        datasets = {"ddi", "collab"};
        sweeps = 4;
    }
    GOPIM_ASSERT(sweeps >= 1, "need at least one sweep");
    const size_t jobs = core::jobsFromFlags(flags);
    const auto systems = core::figure13Systems();
    const auto hw = reram::AcceleratorConfig::paperDefault();

    // The engine under test cycles through the registry; --engine
    // only contributes the base seed / knobs each engine runs under.
    const sim::SimContext base = core::simContextFromFlags(flags);

    const std::vector<std::pair<sim::EngineKind, std::string>> engines =
        {{sim::EngineKind::ClosedForm, "closed"},
         {sim::EngineKind::EventDriven, "event"},
         {sim::EngineKind::Replay, "replay"}};

    // warmByEngine[label][iter]: kept for the cross-engine checks
    // after all three engines have run.
    std::map<std::string, std::vector<std::vector<core::RunResult>>>
        warmByEngine;
    std::vector<EngineTiming> timings;
    uint64_t cells = 0;

    for (const auto &[kind, label] : engines) {
        sim::SimContext engineCtx = base;
        engineCtx.engine = kind;
        engineCtx.engineOverride = nullptr;

        EngineTiming t;
        t.name = label;

        // Cold: a fresh harness per sweep, no cross-sweep reuse.
        std::vector<std::vector<core::RunResult>> cold(sweeps);
        {
            const double start = obs::profileNowUs();
            for (uint32_t iter = 0; iter < sweeps; ++iter) {
                sim::SimContext ctx = engineCtx;
                ctx.seed = engineCtx.seed + iter;
                core::ComparisonHarness fresh(hw, ctx);
                cold[iter] =
                    runGridFlat(fresh, systems, datasets, jobs);
            }
            t.coldUs = obs::profileNowUs() - start;
        }

        // Warm: one harness shared across the sweep, only the sim
        // section changes between iterations.
        core::ComparisonHarness shared(hw, engineCtx);
        std::vector<std::vector<core::RunResult>> warm(sweeps);
        {
            const double start = obs::profileNowUs();
            for (uint32_t iter = 0; iter < sweeps; ++iter) {
                sim::SimContext ctx = engineCtx;
                ctx.seed = engineCtx.seed + iter;
                shared.setSimContext(ctx);
                warm[iter] =
                    runGridFlat(shared, systems, datasets, jobs);
            }
            t.warmUs = obs::profileNowUs() - start;
        }

        for (uint32_t iter = 0; iter < sweeps; ++iter)
            assertGridsIdentical(cold[iter], warm[iter],
                                 "cold vs warm");
        cells += static_cast<uint64_t>(sweeps) * warm[0].size();
        warmByEngine[label] = std::move(warm);
        timings.push_back(t);
    }
    for (uint32_t iter = 0; iter < sweeps; ++iter) {
        assertGridsIdentical(warmByEngine.at("event")[iter],
                             warmByEngine.at("replay")[iter],
                             "event vs replay");
        assertGridsParity(warmByEngine.at("closed")[iter],
                          warmByEngine.at("event")[iter]);
    }
    inform("all ", cells,
           " warm cells bit-identical to their cold runs; replay "
           "bit-identical to event; closed form within pinned "
           "parity");

    // FunctionalTrainer probe: the SoA/arena kernel trajectory, on a
    // density-matched synthetic graph (same recipe as table05).
    double trainerUs = 0.0;
    {
        Rng rng(7);
        const auto data =
            graph::degreeCorrectedPartition(1200, 6, 20.0, 2.1, 0.35,
                                            rng);
        gcn::TrainerConfig cfg;
        cfg.epochs =
            static_cast<uint32_t>(flags.getInt("trainer-epochs"));
        cfg.featureDim = 16;
        cfg.hiddenChannels = 32;
        cfg.seed = 11;
        const gcn::FunctionalTrainer trainer(data, cfg);
        const gcn::SelectivePolicy isu{.enabled = true,
                                       .theta = 0.5,
                                       .coldPeriod = 20};
        const double start = obs::profileNowUs();
        const auto result = trainer.train(isu);
        trainerUs = obs::profileNowUs() - start;
        GOPIM_ASSERT(result.finalTestAccuracy > 0.0,
                     "trainer probe produced no accuracy");
    }

    double coldTotalUs = 0.0;
    double warmTotalUs = 0.0;
    Table table("runGrid hot path (" + std::to_string(cells) +
                    " cells, " + std::to_string(sweeps) +
                    " sweeps/engine)",
                {"engine", "cold ms", "warm ms", "speedup"});
    for (const auto &t : timings) {
        coldTotalUs += t.coldUs;
        warmTotalUs += t.warmUs;
        table.row()
            .cell(t.name)
            .cell(t.coldUs / 1000.0, 2)
            .cell(t.warmUs / 1000.0, 2)
            .cell(t.warmUs > 0.0 ? t.coldUs / t.warmUs : 0.0, 2);
    }
    const double speedup =
        warmTotalUs > 0.0 ? coldTotalUs / warmTotalUs : 0.0;
    table.print(std::cout);
    std::cout << "\ntotal: cold " << coldTotalUs / 1000.0
              << " ms, warm " << warmTotalUs / 1000.0
              << " ms (speedup " << speedup << "x); trainer probe "
              << trainerUs / 1000.0 << " ms\n";

    if (const std::string path = flags.getString("json-out");
        !path.empty()) {
        json::Value doc = json::Value::object();
        doc.set("bench", "hotpath_grid");
        doc.set("quick", quick);
        doc.set("sweeps", static_cast<double>(sweeps));
        doc.set("cells", static_cast<double>(cells));
        json::Value ds = json::Value::array();
        for (const auto &name : datasets)
            ds.push(name);
        doc.set("datasets", std::move(ds));
        json::Value perEngine = json::Value::object();
        for (const auto &t : timings) {
            json::Value e = json::Value::object();
            e.set("cold_ms", t.coldUs / 1000.0);
            e.set("warm_ms", t.warmUs / 1000.0);
            perEngine.set(t.name, std::move(e));
        }
        doc.set("engines", std::move(perEngine));
        doc.set("cold_total_ms", coldTotalUs / 1000.0);
        doc.set("sweep_total_ms", warmTotalUs / 1000.0);
        doc.set("speedup_warm_vs_cold", speedup);
        doc.set("trainer_train_ms", trainerUs / 1000.0);
        doc.set("bit_identical", true);
        std::ofstream out(path);
        if (!out)
            fatal("cannot open --json-out file ", path);
        out << doc.dumpIndented() << '\n';
        inform("wrote hot-path trajectory to ", path);
    }
    core::writeMetricsIfRequested(flags, base);

    // CI perf gate: the warm-vs-cold speedup is a machine-independent
    // ratio, so it can be compared against the committed baseline.
    if (const std::string path = flags.getString("baseline");
        !path.empty()) {
        std::ifstream in(path);
        if (!in)
            fatal("cannot open --baseline file ", path);
        std::stringstream buf;
        buf << in.rdbuf();
        json::Value doc;
        std::string error;
        if (!json::Value::parse(buf.str(), &doc, &error))
            fatal("cannot parse --baseline file ", path, ": ", error);
        const json::Value *committed =
            doc.find("speedup_warm_vs_cold");
        if (!committed)
            fatal("--baseline file ", path,
                  " has no speedup_warm_vs_cold field");
        // The ratio is only comparable between runs of the same
        // shape: fewer sweeps/datasets amortize the caches less, so
        // gating a --quick run against a full-run baseline would
        // always read as a regression. Refuse the mismatch loudly
        // instead of failing with a misleading number.
        const json::Value *baseQuick = doc.find("quick");
        const json::Value *baseSweeps = doc.find("sweeps");
        if (!baseQuick || !baseSweeps ||
            baseQuick->asBool() != quick ||
            static_cast<uint32_t>(baseSweeps->asDouble()) != sweeps)
            fatal("--baseline file ", path,
                  " was recorded with a different sweep shape; "
                  "regenerate it with the same --quick/--sweeps/"
                  "--datasets flags as this run");
        const double tolerance = flags.getDouble("tolerance");
        const double floor = committed->asDouble() / tolerance;
        if (speedup < floor) {
            std::cerr << "PERF REGRESSION: warm-vs-cold speedup "
                      << speedup << "x fell below " << floor
                      << "x (baseline " << committed->asDouble()
                      << "x / tolerance " << tolerance << ")\n";
            return 1;
        }
        inform("perf gate ok: ", speedup, "x vs baseline ",
               committed->asDouble(), "x (floor ", floor, "x)");
    }
    return 0;
}
