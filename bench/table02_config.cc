/**
 * @file
 * Table II reproduction: the specification of the ReRAM accelerator —
 * per-component power/area/parameters at PE, tile, and chip level —
 * plus the derived quantities (total crossbars, 16 GB capacity, area
 * roll-up) the rest of the simulator consumes.
 */

#include <iostream>

#include "common/table.hh"
#include "reram/area.hh"
#include "reram/config.hh"
#include "reram/energy.hh"

int
main()
{
    using namespace gopim;

    const auto cfg = reram::AcceleratorConfig::paperDefault();

    Table pe("Table II (PE properties, 8 PEs per tile)",
             {"component", "power (mW)", "area (mm^2)", "spec"});
    pe.row().cell("ADC").cell(cfg.pe.adcPowerMw, 2).cell(
        cfg.pe.adcAreaMm2, 5)
        .cell(std::to_string(cfg.pe.adcResolutionBits) + " bits x " +
              std::to_string(cfg.pe.adcCount));
    pe.row().cell("DAC").cell(cfg.pe.dacPowerMw, 2).cell(
        cfg.pe.dacAreaMm2, 5)
        .cell(std::to_string(cfg.pe.dacResolutionBits) + " bits x " +
              std::to_string(cfg.pe.dacCount));
    pe.row().cell("S&H").cell(cfg.pe.shPowerMw, 2).cell(
        cfg.pe.shAreaMm2, 5)
        .cell("x " + std::to_string(cfg.pe.shCount));
    pe.row().cell("Crossbar").cell(cfg.crossbar.powerMw, 2).cell(
        cfg.crossbar.areaMm2, 5)
        .cell(std::to_string(cfg.crossbar.rows) + "x" +
              std::to_string(cfg.crossbar.cols) + ", " +
              std::to_string(cfg.crossbar.bitsPerCell) +
              " bits/cell, x " +
              std::to_string(cfg.pe.crossbarsPerPe));
    pe.row().cell("IR").cell(cfg.pe.irPowerMw, 2).cell(
        cfg.pe.irAreaMm2, 5)
        .cell(std::to_string(cfg.pe.irBytes / 1024) + " KB");
    pe.row().cell("OR").cell(cfg.pe.orPowerMw, 2).cell(
        cfg.pe.orAreaMm2, 5)
        .cell(std::to_string(cfg.pe.orBytes) + " B");
    pe.row().cell("S+A").cell(cfg.pe.saPowerMw, 2).cell(
        cfg.pe.saAreaMm2, 5)
        .cell("x " + std::to_string(cfg.pe.saCount));
    pe.print(std::cout);
    std::cout << '\n';

    Table tile("Table II (tile properties, 65536 tiles per chip)",
               {"component", "power (mW)", "area (mm^2)", "spec"});
    tile.row().cell("Input buffer").cell(cfg.tile.inputBufferPowerMw, 2)
        .cell(cfg.tile.inputBufferAreaMm2, 4)
        .cell(std::to_string(cfg.tile.inputBufferBytes / 1024) + " KB");
    tile.row().cell("Crossbar buffer")
        .cell(cfg.tile.crossbarBufferPowerMw, 2)
        .cell(cfg.tile.crossbarBufferAreaMm2, 4)
        .cell(std::to_string(cfg.tile.crossbarBufferBytes / 1024) +
              " KB");
    tile.row().cell("Output buffer")
        .cell(cfg.tile.outputBufferPowerMw, 2)
        .cell(cfg.tile.outputBufferAreaMm2, 4)
        .cell(std::to_string(cfg.tile.outputBufferBytes / 1024) +
              " KB");
    tile.row().cell("NFU").cell(cfg.tile.nfuPowerMw, 2).cell(
        cfg.tile.nfuAreaMm2, 4)
        .cell("x " + std::to_string(cfg.tile.nfuCount));
    tile.row().cell("PFU").cell(cfg.tile.pfuPowerMw, 2).cell(
        cfg.tile.pfuAreaMm2, 5)
        .cell("x " + std::to_string(cfg.tile.pfuCount));
    tile.print(std::cout);
    std::cout << '\n';

    Table chip("Table II (chip properties)",
               {"component", "power (mW)", "area (mm^2)"});
    chip.row().cell("Weight computer")
        .cell(cfg.chip.weightComputerPowerMw, 2)
        .cell(cfg.chip.weightComputerAreaMm2, 2);
    chip.row().cell("Activation module")
        .cell(cfg.chip.activationPowerMw, 4)
        .cell(cfg.chip.activationAreaMm2, 4);
    chip.row().cell("Central controller")
        .cell(cfg.chip.controllerPowerMw, 2)
        .cell(cfg.chip.controllerAreaMm2, 2);
    chip.print(std::cout);
    std::cout << '\n';

    const auto area = reram::computeArea(cfg);
    const reram::EnergyModel energy(cfg);
    Table derived("Derived quantities",
                  {"quantity", "value"});
    derived.row().cell("total crossbars").cell(cfg.totalCrossbars());
    derived.row()
        .cell("ReRAM capacity")
        .cell(std::to_string(cfg.capacityBytes() / (1ull << 30)) +
              " GiB");
    derived.row()
        .cell("read / write latency")
        .cell(formatTimeNs(cfg.crossbar.readLatencyNs) + " / " +
              formatTimeNs(cfg.crossbar.writeLatencyNs));
    derived.row()
        .cell("bit-serial input cycles")
        .cell(static_cast<uint64_t>(cfg.inputCycles()));
    derived.row()
        .cell("row window (rows per serial step)")
        .cell(static_cast<uint64_t>(cfg.windowRows()));
    derived.row().cell("PE area").cell(
        std::to_string(area.perPeMm2) + " mm^2");
    derived.row().cell("tile area").cell(
        std::to_string(area.perTileMm2) + " mm^2");
    derived.row().cell("chip area").cell(
        std::to_string(area.chipMm2 / 100.0) + " cm^2");
    derived.row()
        .cell("activation energy")
        .cell(formatEnergyPj(energy.activationEnergyPj()));
    derived.row()
        .cell("row-write energy")
        .cell(formatEnergyPj(energy.rowWriteEnergyPj()));
    derived.row()
        .cell("background power")
        .cell(std::to_string(energy.backgroundPowerMw()) + " mW");
    derived.print(std::cout);
    return 0;
}
