/**
 * @file
 * Figure 15 reproduction: idle time percentage of the crossbars of
 * each stage on ddi, Naive (pipelined, index mapping, no replicas)
 * versus GoPIM, for micro-batch sizes 32, 64, and 128. The paper
 * reports average idle reductions of 46.75%, 49.75% and 51.75% for
 * the three sizes.
 */

#include <iostream>

#include "common/table.hh"
#include "core/accelerator.hh"
#include "common/flags.hh"
#include "core/harness.hh"
#include "core/options.hh"
#include "core/systems.hh"
#include "gcn/workload.hh"

int
main(int argc, char **argv)
{
    using namespace gopim;

    Flags flags("fig15_idle_batches",
                "Fig. 15 idle reduction per stage group");
    core::addSimFlags(flags);
    if (!flags.parse(argc, argv))
        return 0;

    core::ComparisonHarness harness(
        reram::AcceleratorConfig::paperDefault(),
        core::simContextFromFlags(flags));
    const char *paperReduction[] = {"46.75", "49.75", "51.75"};
    int idx = 0;

    for (uint32_t mb : {32u, 64u, 128u}) {
        auto workload = gcn::Workload::paperDefault("ddi");
        workload.microBatchSize = mb;
        const auto profile =
            gcn::VertexProfile::build(workload.dataset, workload.seed);

        const auto naiveResult = harness.runOne(
            core::SystemKind::Naive, workload, profile);
        const auto gopimResult = harness.runOne(
            core::SystemKind::GoPim, workload, profile);

        Table table("Figure 15: idle % per stage group, micro-batch " +
                        std::to_string(mb),
                    {"stage group", "Naive", "GoPIM", "reduction"});
        double avgReduction = 0.0;
        for (size_t i = 0; i < naiveResult.stages.size(); ++i) {
            const double n = naiveResult.idleFraction[i] * 100.0;
            const double g = gopimResult.idleFraction[i] * 100.0;
            table.row()
                .cell("XBS" + std::to_string(i + 1) + " (" +
                      naiveResult.stages[i].label() + ")")
                .cell(n, 2)
                .cell(g, 2)
                .cell(n - g, 2);
            avgReduction += n - g;
        }
        avgReduction /= static_cast<double>(naiveResult.stages.size());
        table.print(std::cout);
        std::cout << "average idle reduction: " << avgReduction
                  << " points (paper: " << paperReduction[idx++]
                  << ")\n\n";
    }
    return 0;
}
