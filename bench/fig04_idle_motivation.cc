/**
 * @file
 * Figure 4 reproduction: idle time percentage of the crossbars of each
 * stage during forward propagation, per dataset, under the
 * SlimGNN-like pipeline. The paper reports that the Combination stage
 * crossbars (XBS1/XBS3/XBS5) idle 98.47%, 97.50% and 99.03% of the
 * time on average across six datasets.
 */

#include <iostream>

#include "common/math_utils.hh"
#include "common/table.hh"
#include "common/flags.hh"
#include "core/harness.hh"
#include "core/options.hh"
#include "core/systems.hh"
#include "gcn/workload.hh"
#include "graph/datasets.hh"

int
main(int argc, char **argv)
{
    using namespace gopim;

    Flags flags("fig04_idle_motivation",
                "Fig. 4 crossbar-idle motivation study");
    core::addSimFlags(flags);
    if (!flags.parse(argc, argv))
        return 0;

    core::ComparisonHarness harness(
        reram::AcceleratorConfig::paperDefault(),
        core::simContextFromFlags(flags));
    const auto datasets = graph::DatasetCatalog::motivationSet();

    // Column per stage group of the deepest model (12 for 3 layers).
    Table table("Figure 4: crossbar idle time % per stage group "
                "(SlimGNN-like pipeline, forward pass)",
                {"dataset", "XBS1(CO1)", "XBS2(AG1)", "XBS3(CO2)",
                 "XBS4(AG2)", "XBS5(CO3)", "XBS6(AG3)"});

    // Track cross-dataset averages of the Combination stage groups.
    std::vector<double> coIdle[3];

    for (const auto &spec : datasets) {
        const auto workload = gcn::Workload::paperDefault(spec.name);
        const auto result = harness.runOne(
            core::SystemKind::SlimGnnLike, workload);

        auto &row = table.row().cell(spec.name);
        // Forward-pass stage groups: CO/AG pairs, 2L entries.
        const size_t forwardStages = 2ull * workload.model.numLayers;
        for (size_t i = 0; i < 6; ++i) {
            if (i < forwardStages) {
                row.cell(result.idleFraction[i] * 100.0, 2);
                if (i % 2 == 0 && i / 2 < 3)
                    coIdle[i / 2].push_back(
                        result.idleFraction[i] * 100.0);
            } else {
                row.cell("-");
            }
        }
    }
    table.print(std::cout);

    std::cout << "\nAverage Combination-stage idle across datasets "
                 "(paper: 98.47% / 97.50% / 99.03%):\n";
    for (int i = 0; i < 3; ++i) {
        if (!coIdle[i].empty())
            std::cout << "  XBS" << 2 * i + 1 << ": "
                      << mean(coIdle[i]) << "%\n";
    }
    return 0;
}
