/**
 * @file
 * Figure 9 reproduction: (a) RMSE of the candidate regressor families
 * on the stage-time prediction task; (b) RMSE vs MLP depth (2-6
 * layers); (c) RMSE vs hidden width for the 3-layer MLP. Targets are
 * standardized log10 stage times; the paper's winner is the 3-layer,
 * 256-neuron MLP.
 */

#include <cmath>
#include <iostream>
#include <memory>

#include "common/rng.hh"
#include "common/table.hh"
#include "gcn/time_model.hh"
#include "ml/bayes.hh"
#include "ml/data.hh"
#include "ml/forest.hh"
#include "ml/gbt.hh"
#include "ml/knn.hh"
#include "ml/linear.hh"
#include "ml/metrics.hh"
#include "ml/mlp.hh"
#include "ml/svr.hh"
#include "ml/tree.hh"
#include "predictor/datagen.hh"
#include "reram/config.hh"

namespace {

using namespace gopim;

/** Pool all four stage types into one standardized dataset. */
ml::Split
makeSplit(uint64_t seed)
{
    const gcn::StageTimeModel model(
        reram::AcceleratorConfig::paperDefault());
    // ~2200 samples, matching the paper's data-collection budget:
    // each workload contributes 4 samples per layer, 2-4 layers.
    const auto samples = predictor::generateSamples(model, 190, seed);

    // Pool the four stage types into one task, with a one-hot stage
    // type appended to the Table I features (the per-type predictor
    // in src/predictor keeps separate models instead).
    ml::Dataset pooled;
    for (size_t type = 0; type < samples.perStageType.size(); ++type) {
        const auto &d = samples.perStageType[type];
        for (size_t r = 0; r < d.size(); ++r) {
            std::vector<float> row(d.x.rowPtr(r),
                                   d.x.rowPtr(r) + d.x.cols());
            for (size_t t = 0; t < samples.perStageType.size(); ++t)
                row.push_back(t == type ? 1.0f : 0.0f);
            pooled.append(row, d.y[r]);
        }
    }

    Rng rng(seed + 1);
    auto split = ml::trainTestSplit(pooled, 0.8, rng);

    // Standardize features on train statistics.
    ml::StandardScaler xScaler;
    xScaler.fit(split.train.x);
    split.train.x = xScaler.transform(split.train.x);
    split.test.x = xScaler.transform(split.test.x);

    // Standardize targets so RMSE values are scale-free like the
    // paper's (it reports 0.0022 on its normalized scale).
    double mean = 0.0, var = 0.0;
    for (double y : split.train.y)
        mean += y;
    mean /= static_cast<double>(split.train.y.size());
    for (double y : split.train.y)
        var += (y - mean) * (y - mean);
    var /= static_cast<double>(split.train.y.size());
    const double stddev = std::sqrt(std::max(var, 1e-12));
    for (auto *part : {&split.train, &split.test})
        for (double &y : part->y)
            y = (y - mean) / stddev;
    return split;
}

double
evalRmse(ml::Regressor &model, const ml::Split &split)
{
    model.fit(split.train);
    return ml::rmse(split.test.y, model.predictAll(split.test.x));
}

} // namespace

int
main()
{
    const auto split = makeSplit(42);
    std::cout << "samples: " << split.train.size() << " train / "
              << split.test.size() << " test\n\n";

    // (a) Model zoo.
    {
        Table table("Figure 9(a): RMSE per regressor family "
                    "(normalized targets; smaller is better)",
                    {"model", "RMSE"});
        std::vector<std::unique_ptr<ml::Regressor>> zoo;
        zoo.push_back(std::make_unique<ml::GradientBoostedTrees>());
        zoo.push_back(std::make_unique<ml::LinearSvr>());
        zoo.push_back(std::make_unique<ml::DecisionTreeRegressor>());
        zoo.push_back(std::make_unique<ml::LinearRegressor>());
        zoo.push_back(std::make_unique<ml::BinnedBayesRegressor>());
        // Beyond the paper's Fig. 9 set: ensemble + lazy learners.
        zoo.push_back(std::make_unique<ml::RandomForestRegressor>());
        zoo.push_back(std::make_unique<ml::KnnRegressor>());
        zoo.push_back(std::make_unique<ml::MlpRegressor>(
            ml::MlpParams{.hiddenLayers = {256}, .epochs = 300}));

        for (auto &model : zoo)
            table.row().cell(model->name()).cell(
                evalRmse(*model, split), 4);
        table.print(std::cout);
        std::cout << "Paper: the MLP outperforms XGB/SVR/DT/LR/BR.\n\n";
    }

    // (b) MLP depth sweep (layer count includes input and output).
    {
        Table table("Figure 9(b): RMSE vs MLP layer count",
                    {"layers", "RMSE"});
        for (size_t hidden = 0; hidden <= 4; ++hidden) {
            std::vector<size_t> layers(hidden + 1, 128);
            ml::MlpRegressor mlp(
                {.hiddenLayers = layers, .epochs = 250});
            table.row()
                .cell(static_cast<uint64_t>(hidden + 2))
                .cell(evalRmse(mlp, split), 4);
        }
        table.print(std::cout);
        std::cout << "Paper: the 3-layer MLP performs best.\n\n";
    }

    // (c) Hidden width sweep for the 3-layer MLP.
    {
        Table table("Figure 9(c): RMSE vs hidden neurons (3-layer MLP)",
                    {"neurons", "RMSE"});
        for (size_t width : {32u, 64u, 128u, 256u, 512u}) {
            ml::MlpRegressor mlp(
                {.hiddenLayers = {width}, .epochs = 250});
            table.row()
                .cell(static_cast<uint64_t>(width))
                .cell(evalRmse(mlp, split), 4);
        }
        table.print(std::cout);
        std::cout << "Paper: 256 hidden neurons are the most "
                     "effective.\n";
    }
    return 0;
}
