/**
 * @file
 * ISU design ablation: (a) the stop-tolerance knob of the greedy
 * allocator (quality vs allocation footprint), (b) the cold-refresh
 * period of selective updating (write savings vs staleness), and
 * (c) write endurance: the chip-lifetime extension ISU's write
 * reduction buys (Section IV-A motivates SRAM for weights precisely
 * because ReRAM endures only ~1e8 writes).
 */

#include <iostream>

#include "alloc/greedy_heap.hh"
#include "common/flags.hh"
#include "common/table.hh"
#include "core/accelerator.hh"
#include "core/harness.hh"
#include "core/options.hh"
#include "core/systems.hh"
#include "gcn/workload.hh"
#include "reram/resources.hh"

int
main(int argc, char **argv)
{
    using namespace gopim;

    Flags flags("ablation_isu",
                "ISU design ablation (tolerance, cold period, "
                "endurance)");
    core::addSimFlags(flags);
    if (!flags.parse(argc, argv))
        return 0;

    core::ComparisonHarness harness(
        reram::AcceleratorConfig::paperDefault(),
        core::simContextFromFlags(flags));
    const auto workload = gcn::Workload::paperDefault("ddi");
    const auto profile =
        gcn::VertexProfile::build(workload.dataset, workload.seed);
    const auto serial =
        harness.runOne(core::SystemKind::Serial, workload);

    // (a) Stop-tolerance sweep.
    {
        Table table("Ablation: greedy stop tolerance (ddi)",
                    {"relStopTol", "speedup over Serial",
                     "crossbars allocated"});
        for (double tol : {0.0, 1e-5, 1e-4, 1e-3, 1e-2}) {
            auto system = core::makeSystem(core::SystemKind::GoPim);
            system.sim = harness.simContext();
            system.allocator =
                std::make_shared<alloc::GreedyHeapAllocator>(0, tol);
            core::Accelerator accel(harness.hardware(), system);
            const auto run = accel.run(workload, profile);
            table.row()
                .cell(tol, 5)
                .cell(run.speedupOver(serial), 1)
                .cell(run.totalCrossbars);
        }
        table.print(std::cout);
        std::cout << "Looser tolerances trade a little speed for a "
                     "much smaller allocation (idle energy).\n\n";
    }

    // (b) Cold-period sweep.
    {
        Table table("Ablation: ISU cold refresh period (ddi)",
                    {"cold period", "speedup over Serial",
                     "row writes"});
        for (uint32_t period : {1u, 5u, 20u, 50u, 200u}) {
            auto system = core::makeSystem(core::SystemKind::GoPim);
            system.sim = harness.simContext();
            system.policy.coldPeriod = period;
            core::Accelerator accel(harness.hardware(), system);
            const auto run = accel.run(workload, profile);
            table.row()
                .cell(static_cast<uint64_t>(period))
                .cell(run.speedupOver(serial), 1)
                .cell(run.totalRowWrites);
        }
        table.print(std::cout);
        std::cout << "The paper's period of 20 sits on the flat part "
                     "of the write-savings curve.\n\n";
    }

    // (c) Endurance: lifetime extension from ISU's write reduction.
    {
        const auto vanilla =
            harness.runOne(core::SystemKind::GoPimVanilla, workload);
        const auto gopim =
            harness.runOne(core::SystemKind::GoPim, workload);

        // Project the per-epoch writes onto the feature-map region.
        reram::ChipResources resources(harness.hardware());
        const auto idx = resources.allocate(
            "feature map", gopim.totalCrossbars);
        resources.recordWrites(idx, gopim.totalRowWrites);
        const double gopimWear = resources.worstWearFraction();
        resources.reset();
        const auto idx2 = resources.allocate(
            "feature map", vanilla.totalCrossbars);
        resources.recordWrites(idx2, vanilla.totalRowWrites);
        const double vanillaWear = resources.worstWearFraction();

        Table table("Ablation: write endurance per training epoch "
                    "(ddi)",
                    {"system", "row writes", "wear fraction/epoch",
                     "epochs to end of life"});
        table.row()
            .cell("GoPIM-Vanilla")
            .cell(vanilla.totalRowWrites)
            .cell(vanillaWear, 12)
            .cell(1.0 / vanillaWear, 0);
        table.row()
            .cell("GoPIM (ISU)")
            .cell(gopim.totalRowWrites)
            .cell(gopimWear, 12)
            .cell(1.0 / gopimWear, 0);
        table.print(std::cout);
        std::cout << "lifetime extension: "
                  << vanillaWear / gopimWear
                  << "x (write endurance 1e8, Section IV-A)\n";
    }
    return 0;
}
