/**
 * @file
 * Interconnect ablation: the impact of modeling the inter-tile
 * partial-sum reduction network (Section IV-A's adders + pipeline
 * bus) on stage times and the end-to-end speedup, plus the raw NoC
 * characteristics (mesh scaling, reduction trees, traffic patterns).
 */

#include <iostream>

#include "common/flags.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "core/accelerator.hh"
#include "core/harness.hh"
#include "core/options.hh"
#include "core/systems.hh"
#include "gcn/time_model.hh"
#include "gcn/workload.hh"
#include "graph/datasets.hh"
#include "noc/traffic.hh"

int
main(int argc, char **argv)
{
    using namespace gopim;

    Flags flags("ablation_noc",
                "Interconnect ablation: reduction-network impact");
    core::addSimFlags(flags);
    if (!flags.parse(argc, argv))
        return 0;

    // (a) Mesh scaling characteristics.
    {
        Table table("NoC mesh characteristics",
                    {"tiles", "mesh", "diameter", "mean hops",
                     "reduce 64B latency (ns)"});
        for (uint64_t tiles : {4u, 16u, 64u, 256u, 1024u}) {
            const auto mesh = noc::MeshTopology::forTileCount(tiles);
            const noc::NocModel model(mesh);
            table.row()
                .cell(tiles)
                .cell(std::to_string(mesh.cols()) + "x" +
                      std::to_string(mesh.rows()))
                .cell(static_cast<uint64_t>(mesh.diameter()))
                .cell(mesh.meanHops(), 2)
                .cell(model.reductionLatencyNs(tiles, 64), 1);
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    // (b) Traffic patterns.
    {
        const noc::NocModel model(noc::MeshTopology(16, 16));
        Rng rng(7);
        Table table("Synthetic traffic on a 16x16 mesh (64B messages)",
                    {"pattern", "avg hops", "avg latency (ns)",
                     "energy/message (pJ)"});
        {
            noc::TrafficRecorder rec(model);
            noc::uniformRandomTraffic(rec, 50000, 64, rng);
            table.row()
                .cell("uniform random")
                .cell(rec.stats().avgHops(), 2)
                .cell(rec.stats().avgLatencyNs(), 2)
                .cell(rec.stats().energyPj /
                          static_cast<double>(rec.stats().messages),
                      1);
        }
        {
            noc::TrafficRecorder rec(model);
            noc::hotspotTraffic(rec, 50000, 64, 0.8, rng);
            table.row()
                .cell("hotspot (80% to tile 0)")
                .cell(rec.stats().avgHops(), 2)
                .cell(rec.stats().avgLatencyNs(), 2)
                .cell(rec.stats().energyPj /
                          static_cast<double>(rec.stats().messages),
                      1);
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    // (c) End-to-end impact of modeling the reduction network.
    {
        Table table("GoPIM speedup over Serial, with and without the "
                    "inter-tile reduction model",
                    {"dataset", "ideal interconnect", "with NoC",
                     "slowdown %"});
        core::ComparisonHarness harness(
            reram::AcceleratorConfig::paperDefault(),
            core::simContextFromFlags(flags));
        for (const auto &spec :
             {graph::DatasetCatalog::byName("ddi"),
              graph::DatasetCatalog::byName("proteins")}) {
            const auto workload =
                gcn::Workload::paperDefault(spec.name);
            const auto profile = gcn::VertexProfile::build(
                workload.dataset, workload.seed);
            const auto serial =
                harness.runOne(core::SystemKind::Serial, workload);

            const auto idealRun = harness.runOne(
                core::SystemKind::GoPim, workload, profile);

            // NoC-aware run: same system, NoC modeling enabled.
            // The accelerator owns its time model, so rebuild with a
            // custom hardware-config-equivalent path: use the stage
            // model directly for the delta.
            gcn::StageTimeModel withNoc(
                harness.hardware(),
                {.modelNoc = true});
            gcn::StageTimeModel without(harness.hardware(), {});
            gcn::ExecutionPolicy policy;
            const auto artifacts =
                gcn::MappingArtifacts::fullUpdateApprox(
                    workload.dataset.numVertices, 64);
            const auto costsNoc =
                withNoc.allCosts(workload, policy, artifacts);
            const auto costsIdeal =
                without.allCosts(workload, policy, artifacts);
            double overheadSum = 0.0, baseSum = 0.0;
            for (size_t i = 0; i < costsNoc.size(); ++i) {
                overheadSum += costsNoc[i].totalNs();
                baseSum += costsIdeal[i].totalNs();
            }
            const double slowdown = overheadSum / baseSum - 1.0;

            table.row()
                .cell(spec.name)
                .cell(idealRun.speedupOver(serial), 1)
                .cell(idealRun.speedupOver(serial) /
                          (1.0 + slowdown),
                      1)
                .cell(slowdown * 100.0, 2);
        }
        table.print(std::cout);
        std::cout << "\nThe reduction network costs a few percent — "
                     "second-order next to the pipeline effects, "
                     "which is why the headline model keeps it "
                     "optional.\n";
    }
    return 0;
}
