/**
 * @file
 * Figure 6 reproduction: the average degree of the vertices mapped on
 * each crossbar under the index-based mapping strategy, per dataset.
 * The paper reports per-crossbar averages ranging 151.8-827.4 (ddi),
 * 1.6-2266.8 (proteins), and 1-1716.91 (ppa). Interleaved mapping is
 * shown alongside to quantify the fix.
 */

#include <iostream>

#include "common/table.hh"
#include "gcn/workload.hh"
#include "graph/datasets.hh"
#include "mapping/vertex_map.hh"

int
main()
{
    using namespace gopim;
    using mapping::VertexMapStrategy;

    Table table("Figure 6: avg vertex degree per crossbar, index-based "
                "mapping (interleaved shown for contrast)",
                {"dataset", "index min", "index max", "index skew",
                 "interleaved min", "interleaved max",
                 "interleaved skew"});

    for (const auto &spec : graph::DatasetCatalog::motivationSet()) {
        const auto profile = gcn::VertexProfile::build(spec, 1);

        const auto idx = mapping::mapVertices(
            profile.degrees, 64, VertexMapStrategy::IndexBased);
        const auto inter = mapping::mapVertices(
            profile.degrees, 64, VertexMapStrategy::Interleaved);

        const auto idxStats = mapping::minMax(
            mapping::perGroupAvgDegree(idx, profile.degrees));
        const auto interStats = mapping::minMax(
            mapping::perGroupAvgDegree(inter, profile.degrees));

        table.row()
            .cell(spec.name)
            .cell(idxStats.min, 1)
            .cell(idxStats.max, 1)
            .cell(idxStats.skew(), 1)
            .cell(interStats.min, 1)
            .cell(interStats.max, 1)
            .cell(interStats.skew(), 2);
    }
    table.print(std::cout);
    std::cout << "\nPaper index-mapping ranges: ddi 151.8-827.4, "
                 "proteins 1.6-2266.8, ppa 1-1716.91.\n";
    return 0;
}
