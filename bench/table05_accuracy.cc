/**
 * @file
 * Table V reproduction: the accuracy impact of ISU (GoPIM vs
 * GoPIM-Vanilla) per dataset. Task types follow Table III: ddi,
 * collab, and ppa are link-prediction tasks (metric: ROC-AUC %);
 * proteins and arxiv are node classification (metric: accuracy %).
 * The functional trainers run on density-matched synthetic graphs
 * (DESIGN.md §1 documents the substitution); the reproduction target
 * is the *sign and magnitude* of the deltas — the paper reports
 * -0.65% to +4.01%, i.e. within a few points and sometimes positive.
 */

#include <iostream>

#include "common/rng.hh"
#include "common/table.hh"
#include "gcn/link_trainer.hh"
#include "gcn/trainer.hh"
#include "graph/datasets.hh"
#include "graph/generators.hh"
#include "mapping/selective.hh"

int
main()
{
    using namespace gopim;

    const char *paperImpact[] = {"+4.01", "-0.65", "+1.07", "+1.62",
                                 "-0.2"};

    Table table("Table V: accuracy impact of ISU (functional trainers "
                "on density-matched synthetic graphs)",
                {"dataset", "task / metric", "theta", "Vanilla %",
                 "GoPIM %", "impact %", "paper impact %"});

    Rng rng(7);
    int idx = 0;
    for (const auto &spec : graph::DatasetCatalog::figure13Set()) {
        // Scale vertex count down to trainer size, keep the density
        // class (capped so the densest graphs stay tractable).
        const uint32_t vertices = 1200;
        const double avgDeg = std::min(spec.avgDegree, 80.0);
        const auto data = graph::degreeCorrectedPartition(
            vertices, 6, avgDeg, 2.1, 0.35, rng);

        const double theta = mapping::adaptiveTheta(spec.avgDegree);
        gcn::SelectivePolicy isu{.enabled = true,
                                 .theta = theta,
                                 .coldPeriod = 20};

        double vanillaMetric = 0.0;
        double gopimMetric = 0.0;
        std::string metricName;
        if (spec.task == graph::TaskType::LinkPrediction) {
            metricName = "link / AUC";
            gcn::TrainerConfig cfg;
            cfg.epochs = 50;
            cfg.featureDim = 16;
            cfg.hiddenChannels = 16;
            cfg.seed = 11 + static_cast<uint64_t>(idx);
            gcn::LinkPredictionTrainer trainer(data.graph, cfg);
            vanillaMetric = trainer.train({}).bestTestAuc * 100.0;
            gopimMetric = trainer.train(isu).bestTestAuc * 100.0;
        } else {
            metricName = "node / accuracy";
            gcn::TrainerConfig cfg;
            cfg.epochs = 80;
            cfg.featureDim = 8;
            cfg.hiddenChannels = 32;
            cfg.seed = 11 + static_cast<uint64_t>(idx);
            gcn::FunctionalTrainer trainer(data, cfg);
            vanillaMetric =
                trainer.train({}).bestTestAccuracy * 100.0;
            gopimMetric = trainer.train(isu).bestTestAccuracy * 100.0;
        }

        table.row()
            .cell(spec.name)
            .cell(metricName)
            .cell(theta, 1)
            .cell(vanillaMetric, 2)
            .cell(gopimMetric, 2)
            .cell(gopimMetric - vanillaMetric, 2)
            .cell(paperImpact[idx]);
        ++idx;
    }
    table.print(std::cout);
    std::cout << "\nPaper: impacts range -0.65% to +4.01%; losses "
                 "below 1% are acceptable.\n";
    return 0;
}
