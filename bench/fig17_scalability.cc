/**
 * @file
 * Figure 17 / Section VII-F reproduction: (a) GoPIM speedup as the
 * vertex feature dimension grows 256 -> 2048 (speedups persist but
 * taper off); (b) the large products dataset (paper: 5.9x speedup,
 * 1.8x energy saving over Serial); (c) the sparse Cora dataset
 * (paper: 3460.5x over Serial, 1.30x over SlimGNN-like, 1.26x over
 * ReGraphX, 1.27x over ReFlip).
 */

#include <iostream>

#include "common/flags.hh"
#include "common/table.hh"
#include "core/harness.hh"
#include "core/options.hh"
#include "gcn/workload.hh"

int
main(int argc, char **argv)
{
    using namespace gopim;

    Flags flags("fig17_scalability",
                "Fig. 17 feature-dimension and dataset scalability");
    core::addSimFlags(flags);
    core::addJsonOutFlag(flags, "BENCH_fig17.json");
    if (!flags.parse(argc, argv))
        return 0;

    const sim::SimContext ctx = core::simContextFromFlags(flags);
    core::ComparisonHarness harness(
        reram::AcceleratorConfig::paperDefault(), ctx);

    // Every run also lands in the machine-readable --json-out grid.
    std::vector<core::ComparisonRow> jsonRows;

    // (a) Feature dimension sweep on ddi.
    {
        Table table("Figure 17(a): GoPIM speedup vs vertex feature "
                    "dimension (ddi)",
                    {"dimension", "speedup over Serial",
                     "AG crossbars/replica"});
        auto workload = gcn::Workload::paperDefault("ddi");
        const auto profile =
            gcn::VertexProfile::build(workload.dataset, workload.seed);
        for (uint32_t dim : {256u, 512u, 1024u, 2048u}) {
            workload.model.inputChannels = dim;
            workload.model.hiddenChannels = dim;
            workload.model.outputChannels = dim;
            workload.dataset.featureDim = dim;
            const auto s = harness.runOne(
                core::SystemKind::Serial, workload, profile);
            const auto g = harness.runOne(
                core::SystemKind::GoPim, workload, profile);
            jsonRows.push_back({"ddi@dim" + std::to_string(dim),
                                {s, g}});
            table.row()
                .cell(static_cast<uint64_t>(dim))
                .cell(g.speedupOver(s), 1)
                .cell(g.stageCrossbars[1] / g.replicas[1]);
        }
        table.print(std::cout);
        std::cout << "Paper: speedups persist but taper off as "
                     "dimensions grow.\n\n";
    }

    // (b) Large dataset: products.
    {
        const auto workload = gcn::Workload::paperDefault("products");
        const auto serial =
            harness.runOne(core::SystemKind::Serial, workload);
        const auto gopim =
            harness.runOne(core::SystemKind::GoPim, workload);
        jsonRows.push_back({"products", {serial, gopim}});
        Table table("Figure 17(b): scalability on products "
                    "(2,449,029 vertices)",
                    {"metric", "measured", "paper"});
        table.row()
            .cell("speedup over Serial")
            .cell(gopim.speedupOver(serial), 1)
            .cell("5.9x");
        table.row()
            .cell("energy saving over Serial")
            .cell(gopim.energySavingOver(serial), 2)
            .cell("1.8x");
        table.print(std::cout);
        std::cout << '\n';
    }

    // (c) Sparse dataset: Cora with theta = 80%.
    {
        const auto workload = gcn::Workload::paperDefault("Cora");
        const auto systems = core::figure13Systems();
        std::vector<core::RunResult> results;
        const auto profile =
            gcn::VertexProfile::build(workload.dataset, workload.seed);
        for (auto kind : systems)
            results.push_back(harness.runOne(kind, workload, profile));
        jsonRows.push_back({"Cora", results});
        const auto &gopim = results.back();

        Table table("Section VII-F: sparse dataset Cora "
                    "(avg degree 3.9, theta = 80%)",
                    {"baseline", "GoPIM speedup", "GoPIM energy saving",
                     "paper speedup"});
        const char *paper[] = {"3460.5x", "1.30x", "1.26x", "1.27x",
                               "-"};
        for (size_t s = 0; s + 1 < results.size(); ++s) {
            table.row()
                .cell(results[s].systemName)
                .cell(results[s].makespanNs / gopim.makespanNs, 2)
                .cell(results[s].energyPj / gopim.energyPj, 2)
                .cell(paper[s]);
        }
        table.print(std::cout);
        std::cout << "\nPaper: GoPIM's margin shrinks on sparse "
                     "graphs but persists everywhere.\n";
    }
    core::writeGridJsonIfRequested(flags, jsonRows);
    core::writeMetricsIfRequested(flags, ctx);
    core::writeIsaTraceIfRequested(flags, ctx);
    return 0;
}
