# Empty compiler generated dependencies file for gopim_common.
# This may be replaced when dependencies are built.
