file(REMOVE_RECURSE
  "CMakeFiles/gopim_common.dir/common/flags.cc.o"
  "CMakeFiles/gopim_common.dir/common/flags.cc.o.d"
  "CMakeFiles/gopim_common.dir/common/logging.cc.o"
  "CMakeFiles/gopim_common.dir/common/logging.cc.o.d"
  "CMakeFiles/gopim_common.dir/common/math_utils.cc.o"
  "CMakeFiles/gopim_common.dir/common/math_utils.cc.o.d"
  "CMakeFiles/gopim_common.dir/common/rng.cc.o"
  "CMakeFiles/gopim_common.dir/common/rng.cc.o.d"
  "CMakeFiles/gopim_common.dir/common/stats.cc.o"
  "CMakeFiles/gopim_common.dir/common/stats.cc.o.d"
  "CMakeFiles/gopim_common.dir/common/table.cc.o"
  "CMakeFiles/gopim_common.dir/common/table.cc.o.d"
  "libgopim_common.a"
  "libgopim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gopim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
