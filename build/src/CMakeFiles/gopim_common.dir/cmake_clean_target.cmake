file(REMOVE_RECURSE
  "libgopim_common.a"
)
