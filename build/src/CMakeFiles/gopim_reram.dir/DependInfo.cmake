
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reram/area.cc" "src/CMakeFiles/gopim_reram.dir/reram/area.cc.o" "gcc" "src/CMakeFiles/gopim_reram.dir/reram/area.cc.o.d"
  "/root/repo/src/reram/config.cc" "src/CMakeFiles/gopim_reram.dir/reram/config.cc.o" "gcc" "src/CMakeFiles/gopim_reram.dir/reram/config.cc.o.d"
  "/root/repo/src/reram/energy.cc" "src/CMakeFiles/gopim_reram.dir/reram/energy.cc.o" "gcc" "src/CMakeFiles/gopim_reram.dir/reram/energy.cc.o.d"
  "/root/repo/src/reram/latency.cc" "src/CMakeFiles/gopim_reram.dir/reram/latency.cc.o" "gcc" "src/CMakeFiles/gopim_reram.dir/reram/latency.cc.o.d"
  "/root/repo/src/reram/noise.cc" "src/CMakeFiles/gopim_reram.dir/reram/noise.cc.o" "gcc" "src/CMakeFiles/gopim_reram.dir/reram/noise.cc.o.d"
  "/root/repo/src/reram/resources.cc" "src/CMakeFiles/gopim_reram.dir/reram/resources.cc.o" "gcc" "src/CMakeFiles/gopim_reram.dir/reram/resources.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gopim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gopim_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
