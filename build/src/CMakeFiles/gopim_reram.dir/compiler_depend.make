# Empty compiler generated dependencies file for gopim_reram.
# This may be replaced when dependencies are built.
