file(REMOVE_RECURSE
  "CMakeFiles/gopim_reram.dir/reram/area.cc.o"
  "CMakeFiles/gopim_reram.dir/reram/area.cc.o.d"
  "CMakeFiles/gopim_reram.dir/reram/config.cc.o"
  "CMakeFiles/gopim_reram.dir/reram/config.cc.o.d"
  "CMakeFiles/gopim_reram.dir/reram/energy.cc.o"
  "CMakeFiles/gopim_reram.dir/reram/energy.cc.o.d"
  "CMakeFiles/gopim_reram.dir/reram/latency.cc.o"
  "CMakeFiles/gopim_reram.dir/reram/latency.cc.o.d"
  "CMakeFiles/gopim_reram.dir/reram/noise.cc.o"
  "CMakeFiles/gopim_reram.dir/reram/noise.cc.o.d"
  "CMakeFiles/gopim_reram.dir/reram/resources.cc.o"
  "CMakeFiles/gopim_reram.dir/reram/resources.cc.o.d"
  "libgopim_reram.a"
  "libgopim_reram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gopim_reram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
