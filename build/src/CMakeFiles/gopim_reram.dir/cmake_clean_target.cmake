file(REMOVE_RECURSE
  "libgopim_reram.a"
)
