file(REMOVE_RECURSE
  "CMakeFiles/gopim_core.dir/core/accelerator.cc.o"
  "CMakeFiles/gopim_core.dir/core/accelerator.cc.o.d"
  "CMakeFiles/gopim_core.dir/core/harness.cc.o"
  "CMakeFiles/gopim_core.dir/core/harness.cc.o.d"
  "CMakeFiles/gopim_core.dir/core/report.cc.o"
  "CMakeFiles/gopim_core.dir/core/report.cc.o.d"
  "CMakeFiles/gopim_core.dir/core/result.cc.o"
  "CMakeFiles/gopim_core.dir/core/result.cc.o.d"
  "CMakeFiles/gopim_core.dir/core/systems.cc.o"
  "CMakeFiles/gopim_core.dir/core/systems.cc.o.d"
  "libgopim_core.a"
  "libgopim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gopim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
