file(REMOVE_RECURSE
  "libgopim_core.a"
)
