# Empty dependencies file for gopim_core.
# This may be replaced when dependencies are built.
