file(REMOVE_RECURSE
  "libgopim_gcn.a"
)
