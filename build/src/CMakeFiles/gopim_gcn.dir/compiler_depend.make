# Empty compiler generated dependencies file for gopim_gcn.
# This may be replaced when dependencies are built.
