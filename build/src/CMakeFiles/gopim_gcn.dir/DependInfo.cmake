
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gcn/link_trainer.cc" "src/CMakeFiles/gopim_gcn.dir/gcn/link_trainer.cc.o" "gcc" "src/CMakeFiles/gopim_gcn.dir/gcn/link_trainer.cc.o.d"
  "/root/repo/src/gcn/model.cc" "src/CMakeFiles/gopim_gcn.dir/gcn/model.cc.o" "gcc" "src/CMakeFiles/gopim_gcn.dir/gcn/model.cc.o.d"
  "/root/repo/src/gcn/time_model.cc" "src/CMakeFiles/gopim_gcn.dir/gcn/time_model.cc.o" "gcc" "src/CMakeFiles/gopim_gcn.dir/gcn/time_model.cc.o.d"
  "/root/repo/src/gcn/trainer.cc" "src/CMakeFiles/gopim_gcn.dir/gcn/trainer.cc.o" "gcc" "src/CMakeFiles/gopim_gcn.dir/gcn/trainer.cc.o.d"
  "/root/repo/src/gcn/workload.cc" "src/CMakeFiles/gopim_gcn.dir/gcn/workload.cc.o" "gcc" "src/CMakeFiles/gopim_gcn.dir/gcn/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gopim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gopim_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gopim_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gopim_reram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gopim_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gopim_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gopim_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
