file(REMOVE_RECURSE
  "CMakeFiles/gopim_gcn.dir/gcn/link_trainer.cc.o"
  "CMakeFiles/gopim_gcn.dir/gcn/link_trainer.cc.o.d"
  "CMakeFiles/gopim_gcn.dir/gcn/model.cc.o"
  "CMakeFiles/gopim_gcn.dir/gcn/model.cc.o.d"
  "CMakeFiles/gopim_gcn.dir/gcn/time_model.cc.o"
  "CMakeFiles/gopim_gcn.dir/gcn/time_model.cc.o.d"
  "CMakeFiles/gopim_gcn.dir/gcn/trainer.cc.o"
  "CMakeFiles/gopim_gcn.dir/gcn/trainer.cc.o.d"
  "CMakeFiles/gopim_gcn.dir/gcn/workload.cc.o"
  "CMakeFiles/gopim_gcn.dir/gcn/workload.cc.o.d"
  "libgopim_gcn.a"
  "libgopim_gcn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gopim_gcn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
