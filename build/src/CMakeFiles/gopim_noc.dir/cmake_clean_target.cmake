file(REMOVE_RECURSE
  "libgopim_noc.a"
)
