# Empty dependencies file for gopim_noc.
# This may be replaced when dependencies are built.
