file(REMOVE_RECURSE
  "CMakeFiles/gopim_noc.dir/noc/router.cc.o"
  "CMakeFiles/gopim_noc.dir/noc/router.cc.o.d"
  "CMakeFiles/gopim_noc.dir/noc/topology.cc.o"
  "CMakeFiles/gopim_noc.dir/noc/topology.cc.o.d"
  "CMakeFiles/gopim_noc.dir/noc/traffic.cc.o"
  "CMakeFiles/gopim_noc.dir/noc/traffic.cc.o.d"
  "libgopim_noc.a"
  "libgopim_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gopim_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
