file(REMOVE_RECURSE
  "CMakeFiles/gopim_alloc.dir/alloc/allocator.cc.o"
  "CMakeFiles/gopim_alloc.dir/alloc/allocator.cc.o.d"
  "CMakeFiles/gopim_alloc.dir/alloc/annealing.cc.o"
  "CMakeFiles/gopim_alloc.dir/alloc/annealing.cc.o.d"
  "CMakeFiles/gopim_alloc.dir/alloc/basic.cc.o"
  "CMakeFiles/gopim_alloc.dir/alloc/basic.cc.o.d"
  "CMakeFiles/gopim_alloc.dir/alloc/dp.cc.o"
  "CMakeFiles/gopim_alloc.dir/alloc/dp.cc.o.d"
  "CMakeFiles/gopim_alloc.dir/alloc/greedy_heap.cc.o"
  "CMakeFiles/gopim_alloc.dir/alloc/greedy_heap.cc.o.d"
  "libgopim_alloc.a"
  "libgopim_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gopim_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
