
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/allocator.cc" "src/CMakeFiles/gopim_alloc.dir/alloc/allocator.cc.o" "gcc" "src/CMakeFiles/gopim_alloc.dir/alloc/allocator.cc.o.d"
  "/root/repo/src/alloc/annealing.cc" "src/CMakeFiles/gopim_alloc.dir/alloc/annealing.cc.o" "gcc" "src/CMakeFiles/gopim_alloc.dir/alloc/annealing.cc.o.d"
  "/root/repo/src/alloc/basic.cc" "src/CMakeFiles/gopim_alloc.dir/alloc/basic.cc.o" "gcc" "src/CMakeFiles/gopim_alloc.dir/alloc/basic.cc.o.d"
  "/root/repo/src/alloc/dp.cc" "src/CMakeFiles/gopim_alloc.dir/alloc/dp.cc.o" "gcc" "src/CMakeFiles/gopim_alloc.dir/alloc/dp.cc.o.d"
  "/root/repo/src/alloc/greedy_heap.cc" "src/CMakeFiles/gopim_alloc.dir/alloc/greedy_heap.cc.o" "gcc" "src/CMakeFiles/gopim_alloc.dir/alloc/greedy_heap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gopim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gopim_pipeline.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
