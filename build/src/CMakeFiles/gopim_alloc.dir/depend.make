# Empty dependencies file for gopim_alloc.
# This may be replaced when dependencies are built.
