file(REMOVE_RECURSE
  "libgopim_alloc.a"
)
