file(REMOVE_RECURSE
  "libgopim_tensor.a"
)
