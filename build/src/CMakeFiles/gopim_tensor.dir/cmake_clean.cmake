file(REMOVE_RECURSE
  "CMakeFiles/gopim_tensor.dir/tensor/init.cc.o"
  "CMakeFiles/gopim_tensor.dir/tensor/init.cc.o.d"
  "CMakeFiles/gopim_tensor.dir/tensor/matrix.cc.o"
  "CMakeFiles/gopim_tensor.dir/tensor/matrix.cc.o.d"
  "CMakeFiles/gopim_tensor.dir/tensor/ops.cc.o"
  "CMakeFiles/gopim_tensor.dir/tensor/ops.cc.o.d"
  "libgopim_tensor.a"
  "libgopim_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gopim_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
