# Empty dependencies file for gopim_tensor.
# This may be replaced when dependencies are built.
