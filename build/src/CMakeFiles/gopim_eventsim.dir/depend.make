# Empty dependencies file for gopim_eventsim.
# This may be replaced when dependencies are built.
