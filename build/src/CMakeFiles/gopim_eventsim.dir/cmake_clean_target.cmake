file(REMOVE_RECURSE
  "libgopim_eventsim.a"
)
