file(REMOVE_RECURSE
  "CMakeFiles/gopim_eventsim.dir/sim/event_queue.cc.o"
  "CMakeFiles/gopim_eventsim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/gopim_eventsim.dir/sim/pipeline_sim.cc.o"
  "CMakeFiles/gopim_eventsim.dir/sim/pipeline_sim.cc.o.d"
  "libgopim_eventsim.a"
  "libgopim_eventsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gopim_eventsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
