# Empty compiler generated dependencies file for gopim_eventsim.
# This may be replaced when dependencies are built.
