file(REMOVE_RECURSE
  "CMakeFiles/gopim_mapping.dir/mapping/selective.cc.o"
  "CMakeFiles/gopim_mapping.dir/mapping/selective.cc.o.d"
  "CMakeFiles/gopim_mapping.dir/mapping/tiling.cc.o"
  "CMakeFiles/gopim_mapping.dir/mapping/tiling.cc.o.d"
  "CMakeFiles/gopim_mapping.dir/mapping/vertex_map.cc.o"
  "CMakeFiles/gopim_mapping.dir/mapping/vertex_map.cc.o.d"
  "libgopim_mapping.a"
  "libgopim_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gopim_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
