
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapping/selective.cc" "src/CMakeFiles/gopim_mapping.dir/mapping/selective.cc.o" "gcc" "src/CMakeFiles/gopim_mapping.dir/mapping/selective.cc.o.d"
  "/root/repo/src/mapping/tiling.cc" "src/CMakeFiles/gopim_mapping.dir/mapping/tiling.cc.o" "gcc" "src/CMakeFiles/gopim_mapping.dir/mapping/tiling.cc.o.d"
  "/root/repo/src/mapping/vertex_map.cc" "src/CMakeFiles/gopim_mapping.dir/mapping/vertex_map.cc.o" "gcc" "src/CMakeFiles/gopim_mapping.dir/mapping/vertex_map.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gopim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gopim_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gopim_reram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gopim_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
