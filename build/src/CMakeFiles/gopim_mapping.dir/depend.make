# Empty dependencies file for gopim_mapping.
# This may be replaced when dependencies are built.
