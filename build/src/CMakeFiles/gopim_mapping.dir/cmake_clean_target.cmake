file(REMOVE_RECURSE
  "libgopim_mapping.a"
)
