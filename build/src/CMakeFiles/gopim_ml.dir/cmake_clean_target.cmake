file(REMOVE_RECURSE
  "libgopim_ml.a"
)
