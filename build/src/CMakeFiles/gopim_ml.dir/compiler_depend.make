# Empty compiler generated dependencies file for gopim_ml.
# This may be replaced when dependencies are built.
