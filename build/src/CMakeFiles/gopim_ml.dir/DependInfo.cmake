
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/bayes.cc" "src/CMakeFiles/gopim_ml.dir/ml/bayes.cc.o" "gcc" "src/CMakeFiles/gopim_ml.dir/ml/bayes.cc.o.d"
  "/root/repo/src/ml/data.cc" "src/CMakeFiles/gopim_ml.dir/ml/data.cc.o" "gcc" "src/CMakeFiles/gopim_ml.dir/ml/data.cc.o.d"
  "/root/repo/src/ml/forest.cc" "src/CMakeFiles/gopim_ml.dir/ml/forest.cc.o" "gcc" "src/CMakeFiles/gopim_ml.dir/ml/forest.cc.o.d"
  "/root/repo/src/ml/gbt.cc" "src/CMakeFiles/gopim_ml.dir/ml/gbt.cc.o" "gcc" "src/CMakeFiles/gopim_ml.dir/ml/gbt.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/CMakeFiles/gopim_ml.dir/ml/knn.cc.o" "gcc" "src/CMakeFiles/gopim_ml.dir/ml/knn.cc.o.d"
  "/root/repo/src/ml/linear.cc" "src/CMakeFiles/gopim_ml.dir/ml/linear.cc.o" "gcc" "src/CMakeFiles/gopim_ml.dir/ml/linear.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/CMakeFiles/gopim_ml.dir/ml/metrics.cc.o" "gcc" "src/CMakeFiles/gopim_ml.dir/ml/metrics.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/CMakeFiles/gopim_ml.dir/ml/mlp.cc.o" "gcc" "src/CMakeFiles/gopim_ml.dir/ml/mlp.cc.o.d"
  "/root/repo/src/ml/regressor.cc" "src/CMakeFiles/gopim_ml.dir/ml/regressor.cc.o" "gcc" "src/CMakeFiles/gopim_ml.dir/ml/regressor.cc.o.d"
  "/root/repo/src/ml/svr.cc" "src/CMakeFiles/gopim_ml.dir/ml/svr.cc.o" "gcc" "src/CMakeFiles/gopim_ml.dir/ml/svr.cc.o.d"
  "/root/repo/src/ml/tree.cc" "src/CMakeFiles/gopim_ml.dir/ml/tree.cc.o" "gcc" "src/CMakeFiles/gopim_ml.dir/ml/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gopim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gopim_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
