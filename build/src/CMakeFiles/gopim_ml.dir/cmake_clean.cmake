file(REMOVE_RECURSE
  "CMakeFiles/gopim_ml.dir/ml/bayes.cc.o"
  "CMakeFiles/gopim_ml.dir/ml/bayes.cc.o.d"
  "CMakeFiles/gopim_ml.dir/ml/data.cc.o"
  "CMakeFiles/gopim_ml.dir/ml/data.cc.o.d"
  "CMakeFiles/gopim_ml.dir/ml/forest.cc.o"
  "CMakeFiles/gopim_ml.dir/ml/forest.cc.o.d"
  "CMakeFiles/gopim_ml.dir/ml/gbt.cc.o"
  "CMakeFiles/gopim_ml.dir/ml/gbt.cc.o.d"
  "CMakeFiles/gopim_ml.dir/ml/knn.cc.o"
  "CMakeFiles/gopim_ml.dir/ml/knn.cc.o.d"
  "CMakeFiles/gopim_ml.dir/ml/linear.cc.o"
  "CMakeFiles/gopim_ml.dir/ml/linear.cc.o.d"
  "CMakeFiles/gopim_ml.dir/ml/metrics.cc.o"
  "CMakeFiles/gopim_ml.dir/ml/metrics.cc.o.d"
  "CMakeFiles/gopim_ml.dir/ml/mlp.cc.o"
  "CMakeFiles/gopim_ml.dir/ml/mlp.cc.o.d"
  "CMakeFiles/gopim_ml.dir/ml/regressor.cc.o"
  "CMakeFiles/gopim_ml.dir/ml/regressor.cc.o.d"
  "CMakeFiles/gopim_ml.dir/ml/svr.cc.o"
  "CMakeFiles/gopim_ml.dir/ml/svr.cc.o.d"
  "CMakeFiles/gopim_ml.dir/ml/tree.cc.o"
  "CMakeFiles/gopim_ml.dir/ml/tree.cc.o.d"
  "libgopim_ml.a"
  "libgopim_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gopim_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
