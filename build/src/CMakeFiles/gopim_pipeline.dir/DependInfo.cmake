
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/gantt.cc" "src/CMakeFiles/gopim_pipeline.dir/pipeline/gantt.cc.o" "gcc" "src/CMakeFiles/gopim_pipeline.dir/pipeline/gantt.cc.o.d"
  "/root/repo/src/pipeline/schedule.cc" "src/CMakeFiles/gopim_pipeline.dir/pipeline/schedule.cc.o" "gcc" "src/CMakeFiles/gopim_pipeline.dir/pipeline/schedule.cc.o.d"
  "/root/repo/src/pipeline/stage.cc" "src/CMakeFiles/gopim_pipeline.dir/pipeline/stage.cc.o" "gcc" "src/CMakeFiles/gopim_pipeline.dir/pipeline/stage.cc.o.d"
  "/root/repo/src/pipeline/stats.cc" "src/CMakeFiles/gopim_pipeline.dir/pipeline/stats.cc.o" "gcc" "src/CMakeFiles/gopim_pipeline.dir/pipeline/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gopim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
