file(REMOVE_RECURSE
  "libgopim_pipeline.a"
)
