# Empty compiler generated dependencies file for gopim_pipeline.
# This may be replaced when dependencies are built.
