file(REMOVE_RECURSE
  "CMakeFiles/gopim_pipeline.dir/pipeline/gantt.cc.o"
  "CMakeFiles/gopim_pipeline.dir/pipeline/gantt.cc.o.d"
  "CMakeFiles/gopim_pipeline.dir/pipeline/schedule.cc.o"
  "CMakeFiles/gopim_pipeline.dir/pipeline/schedule.cc.o.d"
  "CMakeFiles/gopim_pipeline.dir/pipeline/stage.cc.o"
  "CMakeFiles/gopim_pipeline.dir/pipeline/stage.cc.o.d"
  "CMakeFiles/gopim_pipeline.dir/pipeline/stats.cc.o"
  "CMakeFiles/gopim_pipeline.dir/pipeline/stats.cc.o.d"
  "libgopim_pipeline.a"
  "libgopim_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gopim_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
