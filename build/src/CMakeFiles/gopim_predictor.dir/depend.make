# Empty dependencies file for gopim_predictor.
# This may be replaced when dependencies are built.
