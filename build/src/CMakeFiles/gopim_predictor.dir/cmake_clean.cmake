file(REMOVE_RECURSE
  "CMakeFiles/gopim_predictor.dir/predictor/datagen.cc.o"
  "CMakeFiles/gopim_predictor.dir/predictor/datagen.cc.o.d"
  "CMakeFiles/gopim_predictor.dir/predictor/features.cc.o"
  "CMakeFiles/gopim_predictor.dir/predictor/features.cc.o.d"
  "CMakeFiles/gopim_predictor.dir/predictor/predictor.cc.o"
  "CMakeFiles/gopim_predictor.dir/predictor/predictor.cc.o.d"
  "libgopim_predictor.a"
  "libgopim_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gopim_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
