file(REMOVE_RECURSE
  "libgopim_predictor.a"
)
