# Empty compiler generated dependencies file for gopim_graph.
# This may be replaced when dependencies are built.
