file(REMOVE_RECURSE
  "CMakeFiles/gopim_graph.dir/graph/analysis.cc.o"
  "CMakeFiles/gopim_graph.dir/graph/analysis.cc.o.d"
  "CMakeFiles/gopim_graph.dir/graph/datasets.cc.o"
  "CMakeFiles/gopim_graph.dir/graph/datasets.cc.o.d"
  "CMakeFiles/gopim_graph.dir/graph/generators.cc.o"
  "CMakeFiles/gopim_graph.dir/graph/generators.cc.o.d"
  "CMakeFiles/gopim_graph.dir/graph/graph.cc.o"
  "CMakeFiles/gopim_graph.dir/graph/graph.cc.o.d"
  "CMakeFiles/gopim_graph.dir/graph/io.cc.o"
  "CMakeFiles/gopim_graph.dir/graph/io.cc.o.d"
  "CMakeFiles/gopim_graph.dir/graph/sparsify.cc.o"
  "CMakeFiles/gopim_graph.dir/graph/sparsify.cc.o.d"
  "libgopim_graph.a"
  "libgopim_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gopim_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
