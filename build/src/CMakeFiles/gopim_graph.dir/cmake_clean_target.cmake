file(REMOVE_RECURSE
  "libgopim_graph.a"
)
