# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_ml[1]_include.cmake")
include("/root/repo/build/tests/test_reram[1]_include.cmake")
include("/root/repo/build/tests/test_mapping[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_alloc[1]_include.cmake")
include("/root/repo/build/tests/test_gcn[1]_include.cmake")
include("/root/repo/build/tests/test_predictor[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_flags[1]_include.cmake")
include("/root/repo/build/tests/test_noc[1]_include.cmake")
include("/root/repo/build/tests/test_graph_io[1]_include.cmake")
include("/root/repo/build/tests/test_ml_ensemble[1]_include.cmake")
include("/root/repo/build/tests/test_alloc_annealing[1]_include.cmake")
include("/root/repo/build/tests/test_gantt[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_link_trainer[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_paper_conformance[1]_include.cmake")
