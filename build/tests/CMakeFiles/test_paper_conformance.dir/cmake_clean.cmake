file(REMOVE_RECURSE
  "CMakeFiles/test_paper_conformance.dir/test_paper_conformance.cc.o"
  "CMakeFiles/test_paper_conformance.dir/test_paper_conformance.cc.o.d"
  "test_paper_conformance"
  "test_paper_conformance.pdb"
  "test_paper_conformance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_conformance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
