# Empty dependencies file for test_alloc_annealing.
# This may be replaced when dependencies are built.
