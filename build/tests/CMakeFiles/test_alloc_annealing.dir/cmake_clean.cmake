file(REMOVE_RECURSE
  "CMakeFiles/test_alloc_annealing.dir/test_alloc_annealing.cc.o"
  "CMakeFiles/test_alloc_annealing.dir/test_alloc_annealing.cc.o.d"
  "test_alloc_annealing"
  "test_alloc_annealing.pdb"
  "test_alloc_annealing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alloc_annealing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
