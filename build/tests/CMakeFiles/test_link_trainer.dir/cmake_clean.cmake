file(REMOVE_RECURSE
  "CMakeFiles/test_link_trainer.dir/test_link_trainer.cc.o"
  "CMakeFiles/test_link_trainer.dir/test_link_trainer.cc.o.d"
  "test_link_trainer"
  "test_link_trainer.pdb"
  "test_link_trainer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link_trainer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
