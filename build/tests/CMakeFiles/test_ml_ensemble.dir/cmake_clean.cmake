file(REMOVE_RECURSE
  "CMakeFiles/test_ml_ensemble.dir/test_ml_ensemble.cc.o"
  "CMakeFiles/test_ml_ensemble.dir/test_ml_ensemble.cc.o.d"
  "test_ml_ensemble"
  "test_ml_ensemble.pdb"
  "test_ml_ensemble[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
