# Empty dependencies file for gopim_sim.
# This may be replaced when dependencies are built.
