file(REMOVE_RECURSE
  "CMakeFiles/gopim_sim.dir/gopim_sim.cc.o"
  "CMakeFiles/gopim_sim.dir/gopim_sim.cc.o.d"
  "gopim_sim"
  "gopim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gopim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
