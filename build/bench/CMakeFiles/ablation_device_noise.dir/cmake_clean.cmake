file(REMOVE_RECURSE
  "CMakeFiles/ablation_device_noise.dir/ablation_device_noise.cc.o"
  "CMakeFiles/ablation_device_noise.dir/ablation_device_noise.cc.o.d"
  "ablation_device_noise"
  "ablation_device_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_device_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
