# Empty compiler generated dependencies file for ablation_device_noise.
# This may be replaced when dependencies are built.
