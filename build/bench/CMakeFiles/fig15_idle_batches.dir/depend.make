# Empty dependencies file for fig15_idle_batches.
# This may be replaced when dependencies are built.
