file(REMOVE_RECURSE
  "CMakeFiles/fig15_idle_batches.dir/fig15_idle_batches.cc.o"
  "CMakeFiles/fig15_idle_batches.dir/fig15_idle_batches.cc.o.d"
  "fig15_idle_batches"
  "fig15_idle_batches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_idle_batches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
