file(REMOVE_RECURSE
  "CMakeFiles/fig06_degree_skew.dir/fig06_degree_skew.cc.o"
  "CMakeFiles/fig06_degree_skew.dir/fig06_degree_skew.cc.o.d"
  "fig06_degree_skew"
  "fig06_degree_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_degree_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
