# Empty dependencies file for fig06_degree_skew.
# This may be replaced when dependencies are built.
