file(REMOVE_RECURSE
  "CMakeFiles/ablation_eventdriven.dir/ablation_eventdriven.cc.o"
  "CMakeFiles/ablation_eventdriven.dir/ablation_eventdriven.cc.o.d"
  "ablation_eventdriven"
  "ablation_eventdriven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_eventdriven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
