# Empty dependencies file for ablation_eventdriven.
# This may be replaced when dependencies are built.
