
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_allocators.cc" "bench/CMakeFiles/ablation_allocators.dir/ablation_allocators.cc.o" "gcc" "bench/CMakeFiles/ablation_allocators.dir/ablation_allocators.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gopim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gopim_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gopim_eventsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gopim_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gopim_predictor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gopim_gcn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gopim_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gopim_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gopim_reram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gopim_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gopim_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gopim_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gopim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
