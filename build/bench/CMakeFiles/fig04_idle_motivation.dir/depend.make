# Empty dependencies file for fig04_idle_motivation.
# This may be replaced when dependencies are built.
