file(REMOVE_RECURSE
  "CMakeFiles/table07_ml_vs_profiling.dir/table07_ml_vs_profiling.cc.o"
  "CMakeFiles/table07_ml_vs_profiling.dir/table07_ml_vs_profiling.cc.o.d"
  "table07_ml_vs_profiling"
  "table07_ml_vs_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table07_ml_vs_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
