# Empty dependencies file for table07_ml_vs_profiling.
# This may be replaced when dependencies are built.
