# Empty dependencies file for fig07_osu_example.
# This may be replaced when dependencies are built.
