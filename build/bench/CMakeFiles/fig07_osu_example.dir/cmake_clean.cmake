file(REMOVE_RECURSE
  "CMakeFiles/fig07_osu_example.dir/fig07_osu_example.cc.o"
  "CMakeFiles/fig07_osu_example.dir/fig07_osu_example.cc.o.d"
  "fig07_osu_example"
  "fig07_osu_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_osu_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
