# Empty dependencies file for table02_config.
# This may be replaced when dependencies are built.
