file(REMOVE_RECURSE
  "CMakeFiles/table02_config.dir/table02_config.cc.o"
  "CMakeFiles/table02_config.dir/table02_config.cc.o.d"
  "table02_config"
  "table02_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
