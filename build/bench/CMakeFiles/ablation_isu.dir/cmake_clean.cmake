file(REMOVE_RECURSE
  "CMakeFiles/ablation_isu.dir/ablation_isu.cc.o"
  "CMakeFiles/ablation_isu.dir/ablation_isu.cc.o.d"
  "ablation_isu"
  "ablation_isu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_isu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
