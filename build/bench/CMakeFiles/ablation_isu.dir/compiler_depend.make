# Empty compiler generated dependencies file for ablation_isu.
# This may be replaced when dependencies are built.
