# Empty compiler generated dependencies file for fig13_overall.
# This may be replaced when dependencies are built.
