# Empty dependencies file for table06_allocation.
# This may be replaced when dependencies are built.
