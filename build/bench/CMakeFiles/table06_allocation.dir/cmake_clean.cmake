file(REMOVE_RECURSE
  "CMakeFiles/table06_allocation.dir/table06_allocation.cc.o"
  "CMakeFiles/table06_allocation.dir/table06_allocation.cc.o.d"
  "table06_allocation"
  "table06_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
