file(REMOVE_RECURSE
  "CMakeFiles/fig05_alloc_example.dir/fig05_alloc_example.cc.o"
  "CMakeFiles/fig05_alloc_example.dir/fig05_alloc_example.cc.o.d"
  "fig05_alloc_example"
  "fig05_alloc_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_alloc_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
