# Empty compiler generated dependencies file for fig09_predictor_rmse.
# This may be replaced when dependencies are built.
