file(REMOVE_RECURSE
  "CMakeFiles/fig09_predictor_rmse.dir/fig09_predictor_rmse.cc.o"
  "CMakeFiles/fig09_predictor_rmse.dir/fig09_predictor_rmse.cc.o.d"
  "fig09_predictor_rmse"
  "fig09_predictor_rmse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_predictor_rmse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
