file(REMOVE_RECURSE
  "CMakeFiles/train_link_prediction.dir/train_link_prediction.cc.o"
  "CMakeFiles/train_link_prediction.dir/train_link_prediction.cc.o.d"
  "train_link_prediction"
  "train_link_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_link_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
