# Empty dependencies file for train_link_prediction.
# This may be replaced when dependencies are built.
