file(REMOVE_RECURSE
  "CMakeFiles/custom_allocator.dir/custom_allocator.cc.o"
  "CMakeFiles/custom_allocator.dir/custom_allocator.cc.o.d"
  "custom_allocator"
  "custom_allocator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
