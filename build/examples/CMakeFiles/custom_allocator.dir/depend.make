# Empty dependencies file for custom_allocator.
# This may be replaced when dependencies are built.
